#ifndef RM_ANALYSIS_LINT_HH
#define RM_ANALYSIS_LINT_HH

/**
 * @file
 * `rm-lint`: whole-program static analysis over kernels and compiler
 * output. Checks are plugins (LintCheck) running over a shared
 * LintContext (program + CFG + liveness + hold state, all computed
 * once) and produce structured Diagnostics instead of a single error
 * string, so every violation on every path is reported with its check
 * id, severity and location.
 *
 * Check catalog (docs/ANALYSIS.md has examples and suppression notes):
 *
 *   RM001 extended-access-unheld   error    extended-set register
 *         accessed on a path where the acquire state is not guaranteed
 *   RM002 held-across-barrier      error    CTA barrier reachable while
 *         the extended set may be held (deadlock); also flags a loop
 *         back-edge taken while held (starvation) as a warning
 *   RM003 use-before-def           warning  register read on a path
 *         with no prior definition (reads the zero-initialized value)
 *   RM004 dead-write               warning  register written but never
 *         read before being clobbered or the kernel exiting
 *   RM005 unreachable-block        warning  basic block no path from
 *         entry reaches (usually a compiler-edit bug)
 *   RM006 occupancy-audit          error    recomputed worst-case
 *         register pressure / barrier live-set / register-set metadata
 *         contradict the coloring and |Es|-selection results
 *   RM007 redundant-directive      note     acquire while maybe held /
 *         release while maybe not held (no-ops by spec)
 *
 * "Lint-clean" everywhere in this repository means *no error-severity
 * findings*: warnings and notes never fail a build, a sweep cell or a
 * translation-validation pass.
 */

#include <memory>
#include <string>
#include <vector>

#include "analysis/acquire_state.hh"
#include "analysis/cfg.hh"
#include "analysis/liveness.hh"
#include "isa/program.hh"
#include "sim/config.hh"

namespace rm {

/** How bad one finding is. */
enum class LintSeverity : std::uint8_t { Note = 0, Warning = 1, Error = 2 };

/** Stable lower-case label ("note", "warning", "error"). */
const char *lintSeverityName(LintSeverity severity);

/** One structured finding. */
struct Diagnostic
{
    /** Stable check id ("RM001"...). */
    std::string checkId;
    LintSeverity severity = LintSeverity::Warning;
    /** Basic-block id of the finding; -1 for whole-program findings. */
    int block = -1;
    /** Instruction index of the finding; -1 when not tied to one. */
    int inst = -1;
    /** What is wrong, in one sentence. */
    std::string message;
    /** Optional fix-it note (how to repair or suppress). */
    std::string note;
};

/** Everything the checks see; computed once per program. */
struct LintContext
{
    const Program &program;
    const Cfg &cfg;
    const Liveness &liveness;
    const AcquireState &holds;
    /**
     * Architecture for the occupancy audit (RM006); null skips the
     * config-dependent cross-checks and keeps the pure ones.
     */
    const GpuConfig *config = nullptr;
};

/** One pluggable check. Implementations must be stateless. */
class LintCheck
{
  public:
    virtual ~LintCheck() = default;

    /** Stable id ("RM001"); the mutation corpus asserts against it. */
    virtual const char *id() const = 0;

    /** Kebab-case slug ("extended-access-unheld"). */
    virtual const char *name() const = 0;

    /** One-line description for catalogs and --list-checks. */
    virtual const char *description() const = 0;

    /** Append findings for @p context to @p out. */
    virtual void run(const LintContext &context,
                     std::vector<Diagnostic> &out) const = 0;
};

/** The built-in check suite, in check-id order. */
const std::vector<std::unique_ptr<LintCheck>> &lintChecks();

/** Engine knobs. */
struct LintOptions
{
    /** Check ids to skip (suppression; see docs/ANALYSIS.md). */
    std::vector<std::string> disabledChecks;
    /** Architecture for RM006's config cross-checks (null: skip them). */
    const GpuConfig *config = nullptr;
};

/** Result of one engine run. */
struct LintReport
{
    /** All findings, in (check id, instruction) order. */
    std::vector<Diagnostic> diagnostics;

    int errorCount() const;
    int warningCount() const;
    int noteCount() const;

    /** No error-severity findings (the repository-wide "clean" bar). */
    bool clean() const { return errorCount() == 0; }

    /** Findings of one check id. */
    std::vector<const Diagnostic *> byCheck(const std::string &id) const;

    /** True when any finding carries @p id. */
    bool has(const std::string &id) const;
};

/**
 * Run the full check suite over @p program. The program must verify();
 * regmutex-specific checks degrade gracefully when the metadata is
 * absent (an untransformed kernel with no directives is clean).
 */
LintReport runLints(const Program &program, const LintOptions &options = {});

/**
 * Render @p diagnostic as one human-readable line:
 * "RM001 error @12 (iadd r5, r5, r1): <message>".
 */
std::string renderDiagnostic(const Program &program,
                             const Diagnostic &diagnostic);

/** Render every finding, one line each (empty string when none). */
std::string renderReport(const Program &program, const LintReport &report);

} // namespace rm

#endif // RM_ANALYSIS_LINT_HH
