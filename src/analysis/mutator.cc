#include "analysis/mutator.hh"

#include <functional>
#include <optional>
#include <utility>

#include "analysis/acquire_state.hh"
#include "analysis/cfg.hh"
#include "analysis/liveness.hh"
#include "common/errors.hh"

namespace rm {

namespace {

bool
isDirective(Opcode op)
{
    return op == Opcode::RegAcquire || op == Opcode::RegRelease;
}

Instruction
makeOp(Opcode op)
{
    Instruction inst;
    inst.op = op;
    return inst;
}

Instruction
makeMovImm(RegId dst, std::int64_t value)
{
    Instruction inst;
    inst.op = Opcode::MovImm;
    inst.dst = dst;
    inst.imm = value;
    return inst;
}

Instruction
makeBra(int target)
{
    Instruction inst;
    inst.op = Opcode::Bra;
    inst.target = target;
    return inst;
}

/** Shared per-program facts the site conditions query. */
struct Site
{
    const Program &p;
    Cfg cfg;
    Liveness live;
    AcquireState holds;
    /** Instruction is the target of some branch. */
    std::vector<bool> targeted;

    explicit Site(const Program &program)
        : p(program),
          cfg(Cfg::build(program)),
          live(Liveness::compute(program, cfg)),
          holds(AcquireState::compute(program, cfg)),
          targeted(program.code.size(), false)
    {
        for (const Instruction &inst : p.code)
            if (inst.isBranch() && inst.target >= 0)
                targeted[inst.target] = true;
    }

    int numInsts() const { return static_cast<int>(p.code.size()); }

    bool reachable(int i) const
    {
        return holds.before(i) != HoldState::Unreached;
    }

    /** Both in one block => neither is a leader/terminator boundary. */
    bool sameBlock(int a, int b) const
    {
        return cfg.blockOf(a) == cfg.blockOf(b);
    }

    /** True when no j < i writes the same register code[i] writes. */
    bool firstWriteOf(int i) const
    {
        if (!p.code[i].hasDst())
            return false;
        for (int j = 0; j < i; ++j)
            if (p.code[j].hasDst() && p.code[j].dst == p.code[i].dst)
                return false;
        return true;
    }

    /** A register index never written anywhere, preferring the base
     *  set (so the mutation does not also trip RM001); kNoReg if all
     *  registers are written. */
    RegId neverWrittenReg() const
    {
        RegId fallback = kNoReg;
        for (int r = 0; r < p.info.numRegs; ++r) {
            bool written = false;
            for (const Instruction &inst : p.code)
                written |= inst.hasDst() && inst.dst == r;
            if (written)
                continue;
            if (!p.regmutex.enabled() || r < p.regmutex.baseRegs)
                return static_cast<RegId>(r);
            if (fallback == kNoReg)
                fallback = static_cast<RegId>(r);
        }
        return fallback;
    }

    /** A register index never read anywhere; kNoReg if all are read. */
    RegId neverReadReg() const
    {
        for (int r = 0; r < p.info.numRegs; ++r) {
            bool read = false;
            for (const Instruction &inst : p.code)
                for (int s = 0; s < inst.numSrcs; ++s)
                    read |= inst.srcs[s] == r;
            if (!read)
                return static_cast<RegId>(r);
        }
        return kNoReg;
    }
};

using Generator = std::function<std::optional<Program>(const Site &)>;

struct MutationClass
{
    const char *name;
    const char *expectCheck;
    const char *description;
    bool needsConfig;
    Generator generate;
};

// --- RM001: extended access outside a held region --------------------

std::optional<Program>
nopGuardAcquire(const Site &s)
{
    if (!s.p.regmutex.enabled())
        return std::nullopt;
    const int base = s.p.regmutex.baseRegs;
    for (int a = 0; a < s.numInsts(); ++a) {
        if (s.p.code[a].op != Opcode::RegAcquire || !s.reachable(a))
            continue;
        // The acquire must guard an extended access before the next
        // directive, or removing it proves nothing.
        for (int j = a + 1;
             j < s.numInsts() && !isDirective(s.p.code[j].op); ++j) {
            if (!referencesExtended(s.p.code[j], base))
                continue;
            Program m = s.p;
            m.code[a] = makeOp(Opcode::Nop);
            return m;
        }
    }
    return std::nullopt;
}

std::optional<Program>
swapAcquireExt(const Site &s)
{
    if (!s.p.regmutex.enabled())
        return std::nullopt;
    const int base = s.p.regmutex.baseRegs;
    for (int a = 0; a + 1 < s.numInsts(); ++a) {
        if (s.p.code[a].op != Opcode::RegAcquire || !s.reachable(a))
            continue;
        const Instruction &next = s.p.code[a + 1];
        if (isDirective(next.op) || next.isTerminator() ||
            !referencesExtended(next, base) || !s.sameBlock(a, a + 1) ||
            s.targeted[a] || s.targeted[a + 1])
            continue;
        Program m = s.p;
        std::swap(m.code[a], m.code[a + 1]);
        return m;
    }
    return std::nullopt;
}

std::optional<Program>
releaseBeforeExt(const Site &s)
{
    if (!s.p.regmutex.enabled())
        return std::nullopt;
    const int base = s.p.regmutex.baseRegs;
    for (int j = 1; j < s.numInsts(); ++j) {
        const Instruction &inst = s.p.code[j];
        if (isDirective(inst.op) || !s.reachable(j) ||
            s.holds.before(j) != HoldState::Held ||
            !referencesExtended(inst, base) || !s.sameBlock(j - 1, j))
            continue;
        Program m = s.p;
        m.code[j - 1] = makeOp(Opcode::RegRelease);
        return m;
    }
    return std::nullopt;
}

// --- RM002: barrier / back-edge while held ---------------------------

std::optional<Program>
barInHeld(const Site &s)
{
    for (int j = 0; j + 1 < s.numInsts(); ++j) {
        const Instruction &inst = s.p.code[j];
        if (isDirective(inst.op) || inst.isTerminator() ||
            s.holds.before(j) != HoldState::Held)
            continue;
        Program m = s.p;
        m.code[j] = makeOp(Opcode::Bar);
        return m;
    }
    return std::nullopt;
}

std::optional<Program>
nopReleaseBeforeBar(const Site &s)
{
    // Try each reachable release; keep the first whose removal lets
    // the held region leak into a CTA barrier. Recomputing the hold
    // state per candidate beats pattern-matching the release/barrier
    // placement, which the coalescing passes move across blocks.
    for (int k = 0; k < s.numInsts(); ++k) {
        if (s.p.code[k].op != Opcode::RegRelease || !s.reachable(k))
            continue;
        Program m = s.p;
        m.code[k] = makeOp(Opcode::Nop);
        const Cfg cfg = Cfg::build(m);
        const AcquireState holds = AcquireState::compute(m, cfg);
        for (int j = 0; j < static_cast<int>(m.code.size()); ++j) {
            if (m.code[j].op != Opcode::Bar)
                continue;
            const HoldState at = holds.before(j);
            if (at == HoldState::Held || at == HoldState::Mixed)
                return m;
        }
    }
    return std::nullopt;
}

std::optional<Program>
acquireBeforeBar(const Site &s)
{
    if (!s.p.regmutex.enabled())
        return std::nullopt;
    for (int j = 1; j < s.numInsts(); ++j) {
        const Instruction &prev = s.p.code[j - 1];
        if (s.p.code[j].op != Opcode::Bar || !s.reachable(j) ||
            s.holds.before(j) != HoldState::NotHeld ||
            isDirective(prev.op) || prev.isTerminator() ||
            !s.sameBlock(j - 1, j))
            continue;
        Program m = s.p;
        m.code[j - 1] = makeOp(Opcode::RegAcquire);
        return m;
    }
    return std::nullopt;
}

// --- RM003: use before definition ------------------------------------

std::optional<Program>
nopFirstDef(const Site &s)
{
    for (int i = 0; i < s.numInsts(); ++i) {
        const Instruction &inst = s.p.code[i];
        if (!inst.hasDst() || isDirective(inst.op) || !s.reachable(i) ||
            !s.firstWriteOf(i) || !s.live.isLiveOut(i, inst.dst))
            continue;
        Program m = s.p;
        m.code[i] = makeOp(Opcode::Nop);
        return m;
    }
    return std::nullopt;
}

std::optional<Program>
undefSrc(const Site &s)
{
    const RegId r = s.neverWrittenReg();
    if (r == kNoReg)
        return std::nullopt;
    for (int i = 0; i < s.numInsts(); ++i) {
        const Instruction &inst = s.p.code[i];
        if (isDirective(inst.op) || !s.reachable(i) ||
            inst.numSrcs < 1 || inst.srcs[0] == r)
            continue;
        // The displaced source must itself have a plausible definition,
        // or we merely trade one finding for another.
        bool old_defined = false;
        for (int j = 0; j < i; ++j)
            old_defined |= s.p.code[j].hasDst() &&
                           s.p.code[j].dst == inst.srcs[0];
        if (!old_defined)
            continue;
        Program m = s.p;
        m.code[i].srcs[0] = r;
        return m;
    }
    return std::nullopt;
}

std::optional<Program>
swapDefUse(const Site &s)
{
    for (int i = 0; i + 1 < s.numInsts(); ++i) {
        const Instruction &def = s.p.code[i];
        const Instruction &use = s.p.code[i + 1];
        if (!def.hasDst() || def.isTerminator() || isDirective(def.op) ||
            !s.reachable(i) || !s.firstWriteOf(i) ||
            use.isTerminator() || isDirective(use.op) ||
            !s.sameBlock(i, i + 1) || s.targeted[i] || s.targeted[i + 1])
            continue;
        bool reads_def = false;
        for (int k = 0; k < use.numSrcs; ++k)
            reads_def |= use.srcs[k] == def.dst;
        if (!reads_def)
            continue;
        Program m = s.p;
        std::swap(m.code[i], m.code[i + 1]);
        return m;
    }
    return std::nullopt;
}

// --- RM004: dead register writes -------------------------------------

std::optional<Program>
deadWritePreExit(const Site &s)
{
    for (int e = 1; e < s.numInsts(); ++e) {
        const Instruction &prev = s.p.code[e - 1];
        if (s.p.code[e].op != Opcode::Exit || !s.reachable(e) ||
            isDirective(prev.op) || prev.isTerminator() ||
            !s.sameBlock(e - 1, e))
            continue;
        // Skip sites already reported dead in the base program.
        if (prev.hasDst() && !s.live.isLiveOut(e - 1, prev.dst))
            continue;
        Program m = s.p;
        m.code[e - 1] = makeMovImm(0, 1);
        return m;
    }
    return std::nullopt;
}

std::optional<Program>
clobberDef(const Site &s)
{
    for (int i = 0; i + 1 < s.numInsts(); ++i) {
        const Instruction &def = s.p.code[i];
        const Instruction &next = s.p.code[i + 1];
        if (!def.hasDst() || isDirective(def.op) || !s.reachable(i) ||
            !s.live.isLiveOut(i, def.dst) || next.isTerminator() ||
            isDirective(next.op) || !s.sameBlock(i, i + 1))
            continue;
        // Overwriting an extended register outside a held region would
        // add an RM001 error on top; keep the mutant single-purpose.
        if (s.p.regmutex.enabled() &&
            def.dst >= s.p.regmutex.baseRegs &&
            s.holds.before(i + 1) != HoldState::Held)
            continue;
        Program m = s.p;
        m.code[i + 1] = makeMovImm(def.dst, 1);
        return m;
    }
    return std::nullopt;
}

std::optional<Program>
retargetDstDead(const Site &s)
{
    const RegId r = s.neverReadReg();
    if (r == kNoReg)
        return std::nullopt;
    for (int i = 0; i < s.numInsts(); ++i) {
        const Instruction &inst = s.p.code[i];
        if (!inst.hasDst() || isDirective(inst.op) || !s.reachable(i) ||
            !s.live.isLiveOut(i, inst.dst))
            continue;
        if (s.p.regmutex.enabled() && r >= s.p.regmutex.baseRegs &&
            s.holds.before(i) != HoldState::Held)
            continue;
        Program m = s.p;
        m.code[i].dst = r;
        return m;
    }
    return std::nullopt;
}

// --- RM005: unreachable blocks ---------------------------------------

std::optional<Program>
braOverNext(const Site &s)
{
    for (int i = 0; i + 2 < s.numInsts(); ++i) {
        const Instruction &inst = s.p.code[i];
        if (inst.isTerminator() || isDirective(inst.op) ||
            isDirective(s.p.code[i + 1].op) || !s.reachable(i) ||
            s.targeted[i + 1])
            continue;
        Program m = s.p;
        m.code[i] = makeBra(i + 2);
        return m;
    }
    return std::nullopt;
}

std::optional<Program>
exitOverNext(const Site &s)
{
    for (int i = 0; i + 1 < s.numInsts(); ++i) {
        const Instruction &inst = s.p.code[i];
        if (inst.isTerminator() || isDirective(inst.op) ||
            isDirective(s.p.code[i + 1].op) || !s.reachable(i) ||
            s.targeted[i + 1])
            continue;
        Program m = s.p;
        m.code[i] = makeOp(Opcode::Exit);
        return m;
    }
    return std::nullopt;
}

std::optional<Program>
uncondCondBranch(const Site &s)
{
    for (int i = 0; i + 1 < s.numInsts(); ++i) {
        const Instruction &inst = s.p.code[i];
        if (!inst.isConditionalBranch() || !s.reachable(i) ||
            inst.target == i + 1 || s.targeted[i + 1])
            continue;
        // The fall-through block must have no other way in.
        const BasicBlock &ft = s.cfg.block(s.cfg.blockOf(i + 1));
        if (ft.preds.size() != 1 || ft.preds[0] != s.cfg.blockOf(i))
            continue;
        Program m = s.p;
        m.code[i] = makeBra(inst.target);
        return m;
    }
    return std::nullopt;
}

// --- RM006: metadata / occupancy audit -------------------------------

std::optional<Program>
shrinkBaseSplit(const Site &s)
{
    // Shift the |Bs|/|Es| split below a barrier's live set: the
    // partition stays valid (verify() demands it) but a register live
    // into the barrier is now extended-set — the deadlock-avoidance
    // rule RM006 audits.
    if (!s.p.regmutex.enabled())
        return std::nullopt;
    for (int i = 0; i < s.numInsts(); ++i) {
        if (s.p.code[i].op != Opcode::Bar)
            continue;
        const Bitmask &live = s.live.liveIn(i);
        for (int r = s.p.regmutex.baseRegs - 1; r >= 1; --r) {
            if (!live.test(static_cast<std::size_t>(r)))
                continue;
            Program m = s.p;
            m.regmutex.baseRegs = r;
            m.regmutex.extRegs = m.info.numRegs - r;
            return m;
        }
    }
    return std::nullopt;
}

std::optional<Program>
orphanDirectives(const Site &s)
{
    bool has_directive = false;
    for (const Instruction &inst : s.p.code)
        has_directive |= isDirective(inst.op);
    if (!has_directive)
        return std::nullopt;
    Program m = s.p;
    m.regmutex = RegMutexInfo{};
    return m;
}

std::optional<Program>
misalignRegCount(const Site &s)
{
    if (!s.p.regmutex.enabled())
        return std::nullopt;
    Program m = s.p;
    m.info.numRegs += 1;
    m.regmutex.extRegs += 1;
    return m;
}

// --- RM007: redundant directives -------------------------------------

std::optional<Program>
doubleAcquire(const Site &s)
{
    for (int i = 0; i + 1 < s.numInsts(); ++i) {
        const Instruction &next = s.p.code[i + 1];
        if (s.p.code[i].op != Opcode::RegAcquire || !s.reachable(i) ||
            s.holds.before(i) != HoldState::NotHeld ||
            isDirective(next.op) || next.isTerminator() ||
            !s.sameBlock(i, i + 1))
            continue;
        Program m = s.p;
        m.code[i + 1] = makeOp(Opcode::RegAcquire);
        return m;
    }
    return std::nullopt;
}

std::optional<Program>
doubleRelease(const Site &s)
{
    for (int i = 1; i < s.numInsts(); ++i) {
        const Instruction &prev = s.p.code[i - 1];
        if (s.p.code[i].op != Opcode::RegRelease || !s.reachable(i) ||
            s.holds.before(i) != HoldState::Held ||
            isDirective(prev.op) || prev.isTerminator() ||
            !s.sameBlock(i - 1, i))
            continue;
        Program m = s.p;
        m.code[i - 1] = makeOp(Opcode::RegRelease);
        return m;
    }
    return std::nullopt;
}

std::optional<Program>
releaseOnEntry(const Site &s)
{
    if (!s.p.regmutex.enabled() || s.numInsts() < 2)
        return std::nullopt;
    const Instruction &first = s.p.code[0];
    if (first.isTerminator() || isDirective(first.op))
        return std::nullopt;
    Program m = s.p;
    m.code[0] = makeOp(Opcode::RegRelease);
    return m;
}

const std::vector<MutationClass> &
mutationClasses()
{
    static const std::vector<MutationClass> classes = {
        {"nop-guard-acquire", "RM001",
         "replace the acquire guarding an extended access with a nop",
         false, nopGuardAcquire},
        {"swap-acquire-ext", "RM001",
         "move an extended access ahead of the acquire guarding it",
         false, swapAcquireExt},
        {"release-before-ext", "RM001",
         "release the extended set right before an extended access",
         false, releaseBeforeExt},
        {"bar-in-held", "RM002",
         "plant a CTA barrier inside a held region", false, barInHeld},
        {"nop-release-before-bar", "RM002",
         "remove the release that protects a barrier", false,
         nopReleaseBeforeBar},
        {"acquire-before-bar", "RM002",
         "acquire the extended set right before a barrier", false,
         acquireBeforeBar},
        {"nop-first-def", "RM003",
         "remove the first definition of a register that is read later",
         false, nopFirstDef},
        {"undef-src", "RM003",
         "retarget a source operand to a never-written register", false,
         undefSrc},
        {"swap-def-use", "RM003",
         "swap a definition with the adjacent instruction reading it",
         false, swapDefUse},
        {"dead-write-pre-exit", "RM004",
         "plant a register write immediately before an exit", false,
         deadWritePreExit},
        {"clobber-def", "RM004",
         "overwrite a live definition before anything reads it", false,
         clobberDef},
        {"retarget-dst-dead", "RM004",
         "retarget a live definition to a never-read register", false,
         retargetDstDead},
        {"bra-over-next", "RM005",
         "branch over the next instruction, stranding it", false,
         braOverNext},
        {"exit-over-next", "RM005",
         "exit early, stranding the next instruction", false,
         exitOverNext},
        {"uncond-cond-branch", "RM005",
         "make a conditional branch unconditional, stranding its "
         "fall-through block",
         false, uncondCondBranch},
        {"shrink-base-split", "RM006",
         "shift the |Bs|/|Es| split below a barrier's live set",
         false, shrinkBaseSplit},
        {"orphan-directives", "RM006",
         "strip the RegMutex metadata but keep the directives", false,
         orphanDirectives},
        {"misalign-reg-count", "RM006",
         "grow the register count off the allocation granularity", true,
         misalignRegCount},
        {"double-acquire", "RM007",
         "acquire twice in a row", false, doubleAcquire},
        {"double-release", "RM007",
         "release twice in a row", false, doubleRelease},
        {"release-on-entry", "RM007",
         "release at kernel entry while nothing is held", false,
         releaseOnEntry},
    };
    return classes;
}

} // namespace

std::vector<Mutant>
mutationCorpus(const Program &program)
{
    program.verify();
    const Site site(program);

    std::vector<Mutant> corpus;
    for (const MutationClass &cls : mutationClasses()) {
        std::optional<Program> mutated = cls.generate(site);
        if (!mutated)
            continue;
        mutated->verify();
        Mutant mutant;
        mutant.name = cls.name;
        mutant.expectCheck = cls.expectCheck;
        mutant.description = cls.description;
        mutant.needsConfig = cls.needsConfig;
        mutant.program = std::move(*mutated);
        corpus.push_back(std::move(mutant));
    }
    return corpus;
}

std::vector<std::string>
mutationClassNames()
{
    std::vector<std::string> names;
    for (const MutationClass &cls : mutationClasses())
        names.push_back(cls.name);
    return names;
}

} // namespace rm
