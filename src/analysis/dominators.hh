#ifndef RM_ANALYSIS_DOMINATORS_HH
#define RM_ANALYSIS_DOMINATORS_HH

/**
 * @file
 * Dominator and post-dominator trees over a Cfg (Cooper-Harvey-Kennedy
 * iterative algorithm). The RegMutex liveness discussion (paper Sec.
 * III-A1) keys register death points off immediate post-dominators of
 * branches; the loop detector uses dominators to find back edges.
 */

#include <vector>

#include "analysis/cfg.hh"

namespace rm {

/**
 * Dominator tree: idom(entry) == entry; every other reachable block has
 * an immediate dominator. Unreachable blocks report -1.
 */
class DominatorTree
{
  public:
    /** Compute dominators (forward) over @p cfg. */
    static DominatorTree compute(const Cfg &cfg);

    /**
     * Compute post-dominators by running the same algorithm on the
     * reversed graph with a virtual exit joining all Exit blocks. The
     * virtual exit is reported as -2.
     */
    static DominatorTree computePost(const Cfg &cfg);

    /** Immediate (post-)dominator of @p block, -1 if unreachable. */
    int idom(int block) const;

    /** True when @p a (post-)dominates @p b (reflexive). */
    bool dominates(int a, int b) const;

  private:
    std::vector<int> idoms;
    int rootId = 0;
};

} // namespace rm

#endif // RM_ANALYSIS_DOMINATORS_HH
