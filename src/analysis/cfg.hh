#ifndef RM_ANALYSIS_CFG_HH
#define RM_ANALYSIS_CFG_HH

/**
 * @file
 * Control-flow graph over a Program. Blocks are maximal straight-line
 * instruction ranges; edges follow branch targets and fall-throughs.
 * The RegMutex compiler performs its liveness analysis and directive
 * injection on this graph (paper Sec. III-A).
 */

#include <vector>

#include "isa/program.hh"

namespace rm {

/** A basic block: instructions [first, last] inclusive. */
struct BasicBlock
{
    int id = -1;
    int first = -1;
    int last = -1;
    std::vector<int> succs;
    std::vector<int> preds;

    int size() const { return last - first + 1; }
};

/**
 * Immutable CFG of a program. Block 0 is the entry block. Exit blocks
 * are those ending in Exit.
 */
class Cfg
{
  public:
    /** Build the CFG of @p program (which must verify()). */
    static Cfg build(const Program &program);

    std::size_t numBlocks() const { return basicBlocks.size(); }
    const BasicBlock &block(int id) const;
    const std::vector<BasicBlock> &blocks() const { return basicBlocks; }

    /** Block containing instruction @p inst_index. */
    int blockOf(int inst_index) const;

    /** Ids of all blocks ending in Exit. */
    const std::vector<int> &exitBlocks() const { return exits; }

    /** Reverse post-order over forward edges, starting at entry. */
    std::vector<int> reversePostOrder() const;

  private:
    std::vector<BasicBlock> basicBlocks;
    std::vector<int> instToBlock;
    std::vector<int> exits;
};

} // namespace rm

#endif // RM_ANALYSIS_CFG_HH
