#include "analysis/liveness.hh"

#include <algorithm>

#include "analysis/dataflow.hh"
#include "common/errors.hh"

namespace rm {

namespace {

/** Backward may-liveness as an instance of the generic solver. */
struct LiveProblem
{
    using Value = Bitmask;
    static constexpr DataflowDirection direction =
        DataflowDirection::Backward;

    const Cfg &cfg;
    /** Per-block upward-exposed uses. */
    const std::vector<Bitmask> &gen;
    /** Per-block definitions. */
    const std::vector<Bitmask> &kill;
    int numRegs;

    Value boundary() const { return Bitmask(numRegs); }
    Value top() const { return Bitmask(numRegs); }

    bool join(Value &into, const Value &from) const
    {
        const std::size_t before = into.count();
        into |= from;
        return into.count() != before;
    }

    /** liveIn = gen | (liveOut - kill). */
    Value transfer(int block, const Value &out) const
    {
        Value in = out;
        in.subtract(kill[block]);
        in |= gen[block];
        return in;
    }
};

} // namespace

Liveness
Liveness::compute(const Program &program, const Cfg &cfg)
{
    const auto &code = program.code;
    const int num_regs = program.info.numRegs;
    const int num_blocks = static_cast<int>(cfg.numBlocks());

    // Per-block gen (upward-exposed uses) and kill (defs) sets.
    std::vector<Bitmask> gen(num_blocks, Bitmask(num_regs));
    std::vector<Bitmask> kill(num_blocks, Bitmask(num_regs));
    for (const auto &block : cfg.blocks()) {
        for (int i = block.first; i <= block.last; ++i) {
            const Instruction &inst = code[i];
            for (int s = 0; s < inst.numSrcs; ++s) {
                if (!kill[block.id].test(inst.srcs[s]))
                    gen[block.id].set(inst.srcs[s]);
            }
            if (inst.hasDst())
                kill[block.id].set(inst.dst);
        }
    }

    const LiveProblem problem{cfg, gen, kill, num_regs};
    const DataflowResult<Bitmask> solved = solveDataflow(cfg, problem);

    // Per-instruction backward sweep within each block.
    Liveness result;
    result.regCount = num_regs;
    result.liveInSets.assign(code.size(), Bitmask(num_regs));
    result.liveOutSets.assign(code.size(), Bitmask(num_regs));
    for (const auto &block : cfg.blocks()) {
        Bitmask live = solved.out[block.id];
        for (int i = block.last; i >= block.first; --i) {
            const Instruction &inst = code[i];
            result.liveOutSets[i] = live;
            if (inst.hasDst())
                live.unset(inst.dst);
            for (int s = 0; s < inst.numSrcs; ++s)
                live.set(inst.srcs[s]);
            result.liveInSets[i] = live;
        }
    }
    return result;
}

const Bitmask &
Liveness::liveIn(int inst) const
{
    panicIf(inst < 0 || inst >= static_cast<int>(liveInSets.size()),
            "Liveness::liveIn index out of range");
    return liveInSets[inst];
}

const Bitmask &
Liveness::liveOut(int inst) const
{
    panicIf(inst < 0 || inst >= static_cast<int>(liveOutSets.size()),
            "Liveness::liveOut index out of range");
    return liveOutSets[inst];
}

int
Liveness::liveCount(int inst) const
{
    return static_cast<int>(liveIn(inst).count());
}

bool
Liveness::isLiveIn(int inst, RegId reg) const
{
    return liveIn(inst).test(reg);
}

bool
Liveness::isLiveOut(int inst, RegId reg) const
{
    return liveOut(inst).test(reg);
}

int
Liveness::maxLiveCount() const
{
    int max_count = 0;
    for (const auto &mask : liveInSets)
        max_count = std::max(max_count, static_cast<int>(mask.count()));
    return max_count;
}

std::vector<int>
Liveness::liveCounts() const
{
    std::vector<int> counts(liveInSets.size());
    for (std::size_t i = 0; i < liveInSets.size(); ++i)
        counts[i] = static_cast<int>(liveInSets[i].count());
    return counts;
}

std::vector<double>
livenessTimeline(const Liveness &liveness, const std::vector<int> &pc_trace,
                 int allocated_regs)
{
    fatalIf(allocated_regs <= 0,
            "livenessTimeline: allocated_regs must be positive");
    std::vector<double> series;
    series.reserve(pc_trace.size());
    for (int pc : pc_trace) {
        series.push_back(static_cast<double>(liveness.liveCount(pc)) /
                         static_cast<double>(allocated_regs));
    }
    return series;
}

} // namespace rm
