#include "core/sweep.hh"

#include <map>
#include <string>

#include "common/errors.hh"
#include "common/thread_pool.hh"
#include "workloads/suite.hh"

namespace rm {

std::vector<SweepResult>
runSweep(const std::vector<SweepCase> &cases, const SweepOptions &options)
{
    // Build each distinct workload once, serially, before fanning out:
    // the builders share no state with the simulation but this keeps
    // the parallel phase allocation-light and the failure mode simple
    // (a bad workload name fails before any simulation starts).
    std::map<std::string, Program> programs;
    for (const SweepCase &c : cases) {
        if (!programs.count(c.workload))
            programs.emplace(c.workload, buildWorkload(c.workload));
    }
    // Resolve every policy up front for the same reason; the returned
    // spec references stay valid for the registry's lifetime.
    std::map<std::string, const PolicySpec *> policies;
    for (const SweepCase &c : cases) {
        if (!policies.count(c.policy))
            policies.emplace(c.policy,
                             &PolicyRegistry::instance().at(c.policy));
    }

    std::vector<SweepResult> results(cases.size());
    parallelFor(
        static_cast<int>(cases.size()),
        [&](int i) {
            const SweepCase &c = cases[static_cast<std::size_t>(i)];
            SweepResult &out = results[static_cast<std::size_t>(i)];
            out.spec = c;

            const PolicySpec &policy = *policies.at(c.policy);
            out.compile = policy.compile(programs.at(c.workload), c.config,
                                         c.compileOptions);

            GpuOptions gpu = options.gpu;
            // Observability sinks are per-run state; a sweep never
            // attaches the caller's sinks to its (parallel) cells.
            gpu.obs = ObsSinks{};
            gpu.sinksForSm = nullptr;
            out.run = simulateGpu(c.config, out.compile.program,
                                  policy.allocator, gpu);
        },
        options.threads);
    return results;
}

std::vector<SweepCase>
sweepGrid(const std::vector<std::string> &workloads,
          const std::vector<std::string> &policies,
          const std::vector<std::pair<std::string, GpuConfig>> &configs,
          const CompileOptions &compile_options)
{
    std::vector<SweepCase> grid;
    grid.reserve(workloads.size() * policies.size() * configs.size());
    for (const auto &[arch, config] : configs) {
        for (const std::string &workload : workloads) {
            for (const std::string &policy : policies) {
                SweepCase c;
                c.workload = workload;
                c.policy = policy;
                c.arch = arch;
                c.config = config;
                c.compileOptions = compile_options;
                grid.push_back(std::move(c));
            }
        }
    }
    return grid;
}

SweepCli::SweepCli(int argc, char *const *argv)
{
    auto numberAfter = [&](int &i, const char *flag) {
        fatalIf(i + 1 >= argc, flag, " needs a value");
        const std::string text = argv[++i];
        try {
            std::size_t used = 0;
            const int v = std::stoi(text, &used);
            if (used == text.size() && v >= 0)
                return v;
        } catch (const std::exception &) {
        }
        fatal(flag, " needs a non-negative integer, got '", text, "'");
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--sms") {
            sms = numberAfter(i, "--sms");
            fatalIf(sms < 1, "--sms needs at least 1 SM");
        } else if (arg == "--threads") {
            threads = numberAfter(i, "--threads");
        }
        // Anything else belongs to the bench (e.g. --json).
    }
}

void
SweepCli::apply(GpuConfig &config, SweepOptions &options) const
{
    options.threads = threads;
    if (sms > 1) {
        config.numSms = sms;
        options.gpu.mode = GpuOptions::Mode::FullMachine;
    }
}

} // namespace rm
