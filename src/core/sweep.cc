#include "core/sweep.hh"

#include <cstdio>
#include <exception>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <string>

#include "analysis/lint.hh"
#include "common/errors.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "core/checkpoint.hh"
#include "obs/profiler.hh"
#include "sim/snapshot.hh"
#include "workloads/suite.hh"

namespace rm {

const char *
sweepStatusName(SweepStatus status)
{
    switch (status) {
      case SweepStatus::Ok:
        return "ok";
      case SweepStatus::CompileFailed:
        return "compile-failed";
      case SweepStatus::LintFailed:
        return "lint-failed";
      case SweepStatus::SimFailed:
        return "sim-failed";
      case SweepStatus::Deadlocked:
        return "deadlocked";
      case SweepStatus::Preempted:
        return "preempted";
    }
    return "unknown";
}

namespace {

/** FNV-1a over a serialized field string: stable across processes. */
std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string
configFingerprint(const SweepCase &spec)
{
    const GpuConfig &c = spec.config;
    const FaultPlan &f = spec.fault;
    std::ostringstream os;
    os << c.numSms << ',' << c.maxWarpsPerSm << ',' << c.maxCtasPerSm
       << ',' << c.maxThreadsPerSm << ',' << c.registersPerSm << ','
       << c.sharedMemPerSm << ',' << c.warpSize << ',' << c.numSchedulers
       << ',' << c.regAllocGranularity << ',' << c.aluLatency << ','
       << c.sfuLatency << ',' << c.sharedLatency << ',' << c.globalLatency
       << ',' << c.memIssuePerCycle << ',' << c.maxPendingMemPerWarp
       << ',' << c.rfBanks << ',' << c.modelBankConflicts << ','
       << static_cast<int>(c.schedPolicy) << ',' << c.wakeOnRelease << ','
       << c.watchdogCycles
       << '|' << spec.compileOptions.forcedEs << ','
       << spec.compileOptions.enableCompaction << ','
       << spec.compileOptions.enableRepair << ','
       << spec.compileOptions.maxRepairIterations << ','
       << static_cast<int>(spec.compileOptions.tieBreak) << ','
       << spec.compileOptions.coalesceGap
       << '|' << f.seed << ',' << f.denyAcquire.from << ','
       << f.denyAcquire.until << ',' << f.denyAcquireChance << ','
       << f.delayRelease.from << ',' << f.delayRelease.until << ','
       << f.releaseDelayCycles << ',' << f.shrinkSrpAtCycle << ','
       << f.shrinkSrpSections << ',' << f.memSpike.from << ','
       << f.memSpike.until << ',' << f.memSpikeFactor << ','
       << f.corruptStateAtCycle << ',' << spec.faultSm;
    std::ostringstream hex;
    hex << std::hex << fnv1a(os.str());
    return hex.str();
}

std::string
exceptionMessage(const std::exception &e)
{
    return e.what() ? std::string(e.what()) : std::string("unknown error");
}

} // namespace

std::string
sweepCaseKey(const SweepCase &spec)
{
    return spec.workload + "|" + spec.policy + "|" + spec.arch + "|" +
           configFingerprint(spec);
}

std::vector<SweepResult>
runSweep(const std::vector<SweepCase> &cases, const SweepOptions &options)
{
    // Build each distinct workload once, serially, before fanning out:
    // the builders share no state with the simulation but this keeps
    // the parallel phase allocation-light. A workload that fails to
    // build poisons only the cells that reference it.
    std::map<std::string, Program> programs;
    std::map<std::string, std::string> workloadErrors;
    for (const SweepCase &c : cases) {
        if (programs.count(c.workload) || workloadErrors.count(c.workload))
            continue;
        try {
            programs.emplace(c.workload, buildWorkload(c.workload));
        } catch (const std::exception &e) {
            workloadErrors.emplace(c.workload, exceptionMessage(e));
        }
    }
    // Resolve every policy up front for the same reason; the returned
    // spec references stay valid for the registry's lifetime. Unknown
    // policies poison only their own cells.
    std::map<std::string, const PolicySpec *> policies;
    std::map<std::string, std::string> policyErrors;
    for (const SweepCase &c : cases) {
        if (policies.count(c.policy) || policyErrors.count(c.policy))
            continue;
        try {
            policies.emplace(c.policy,
                             &PolicyRegistry::instance().at(c.policy));
        } catch (const std::exception &e) {
            policyErrors.emplace(c.policy, exceptionMessage(e));
        }
    }

    JsonlCheckpoint checkpoint(options.checkpointPath,
                               options.fsyncEvery);

    std::vector<SweepResult> results(cases.size());
    parallelFor(
        static_cast<int>(cases.size()),
        [&](int i) {
            const SweepCase &c = cases[static_cast<std::size_t>(i)];
            SweepResult &out = results[static_cast<std::size_t>(i)];
            out.spec = c;

            if (const auto it = workloadErrors.find(c.workload);
                it != workloadErrors.end()) {
                out.status = SweepStatus::CompileFailed;
                out.error = "workload '" + c.workload +
                            "' failed to build: " + it->second;
                return;
            }
            if (const auto it = policyErrors.find(c.policy);
                it != policyErrors.end()) {
                out.status = SweepStatus::CompileFailed;
                out.error = it->second;
                return;
            }

            const PolicySpec &policy = *policies.at(c.policy);
            try {
                RM_PROF_SCOPE_ARG(ProfPhase::SweepCompile, i);
                out.compile = policy.compile(programs.at(c.workload),
                                             c.config, c.compileOptions);
            } catch (const std::exception &e) {
                out.status = SweepStatus::CompileFailed;
                out.error = exceptionMessage(e);
                return;
            }

            // Static gate: never hand the engine a program the lint
            // suite can already prove broken (a held barrier would
            // simulate for millions of cycles before deadlocking).
            if (options.lint) {
                RM_PROF_SCOPE_ARG(ProfPhase::SweepLint, i);
                LintOptions lint_options;
                lint_options.config = &c.config;
                lint_options.disabledChecks = policy.lintSuppressions;
                try {
                    const LintReport lint =
                        runLints(out.compile.program, lint_options);
                    if (!lint.clean()) {
                        out.status = SweepStatus::LintFailed;
                        for (const Diagnostic &d : lint.diagnostics) {
                            if (d.severity != LintSeverity::Error)
                                continue;
                            out.error =
                                "lint: " + renderDiagnostic(
                                               out.compile.program, d);
                            break;
                        }
                        return;
                    }
                } catch (const std::exception &e) {
                    out.status = SweepStatus::LintFailed;
                    out.error = "lint: " + exceptionMessage(e);
                    return;
                }
            }

            const std::string key = sweepCaseKey(c);
            if (const SimStats *restored = checkpoint.find(key)) {
                out.run.aggregate = *restored;
                out.fromCheckpoint = true;
                return;
            }

            GpuOptions gpu = options.gpu;
            // Observability sinks are per-run state; a sweep never
            // attaches the caller's sinks to its (parallel) cells.
            gpu.obs = ObsSinks{};
            gpu.sinksForSm = nullptr;
            gpu.fault = c.fault;
            gpu.faultSm = c.faultSm;

            // Per-cell engine snapshot: resume a previously
            // interrupted cell, and keep the file current while this
            // run makes progress.
            std::string snap_path;
            if (!options.snapshotDir.empty()) {
                std::ostringstream hex;
                hex << std::hex << fnv1a(key);
                snap_path =
                    options.snapshotDir + "/" + hex.str() + ".snap";
                if (std::ifstream probe(snap_path); probe.good()) {
                    probe.close();
                    try {
                        gpu.resume = std::make_shared<GpuSnapshot>(
                            readSnapshotFile(snap_path));
                    } catch (const std::exception &e) {
                        warn("sweep: unreadable snapshot '", snap_path,
                             "' (", exceptionMessage(e),
                             "); restarting cell fresh");
                        std::remove(snap_path.c_str());
                    }
                }
                if (gpu.snapshotEvery > 0)
                    gpu.snapshotSink =
                        [snap_path](const GpuSnapshot &snap) {
                            writeSnapshotFile(snap_path, snap);
                        };
            }

            int attempt = 0;
            while (attempt <= options.retries) {
                ++out.attempts;
                // Deterministic reseed per retry: attempt 0 reproduces
                // the un-retried sweep exactly. Retries never resume —
                // the snapshot belongs to the attempt-0 seed.
                gpu.memSeed =
                    options.gpu.memSeed +
                    static_cast<std::uint64_t>(attempt) * 0x9e3779b9ULL;
                if (attempt > 0)
                    gpu.resume = nullptr;
                try {
                    // One span per attempt, so the count doubles as an
                    // attempt counter in the profile.
                    RM_PROF_SCOPE_ARG(ProfPhase::SweepSim, i);
                    out.run = simulateGpu(c.config, out.compile.program,
                                          policy.allocator, gpu);
                } catch (const SnapshotError &e) {
                    if (gpu.resume != nullptr) {
                        // Stale snapshot (different kernel revision,
                        // architecture, seed...): discard and rerun
                        // this attempt from scratch.
                        warn("sweep: stale snapshot for '", key, "' (",
                             exceptionMessage(e),
                             "); restarting cell fresh");
                        gpu.resume = nullptr;
                        if (!snap_path.empty())
                            std::remove(snap_path.c_str());
                        --out.attempts;
                        continue;
                    }
                    out.status = SweepStatus::SimFailed;
                    out.error = exceptionMessage(e);
                    ++attempt;
                    continue;
                } catch (const SimulationError &e) {
                    out.status = SweepStatus::Deadlocked;
                    out.error = exceptionMessage(e);
                    out.diagnosis = e.diagnosis();
                    ++attempt;
                    continue;
                } catch (const std::exception &e) {
                    out.status = SweepStatus::SimFailed;
                    out.error = exceptionMessage(e);
                    ++attempt;
                    continue;
                }
                if (out.run.status == GpuResult::Status::Preempted) {
                    // Not a failure: the budget ran out. Persist the
                    // snapshot so the next sweep resumes this cell,
                    // and never burn retries on it.
                    out.status = SweepStatus::Preempted;
                    out.error =
                        std::string("preempted: ") +
                        preemptReasonName(out.run.preemptReason);
                    if (!snap_path.empty() && out.run.snapshot)
                        writeSnapshotFile(snap_path, *out.run.snapshot);
                    return;
                }
                if (out.run.aggregate.deadlocked) {
                    out.status = SweepStatus::Deadlocked;
                    out.diagnosis = out.run.aggregate.hang;
                    out.error = out.diagnosis
                                    ? out.diagnosis->summary()
                                    : "simulation declared a deadlock";
                    ++attempt;
                    continue;
                }
                out.status = SweepStatus::Ok;
                out.error.clear();
                out.diagnosis = nullptr;
                {
                    RM_PROF_SCOPE_ARG(ProfPhase::SweepCheckpoint, i);
                    checkpoint.record(key, out.run.aggregate);
                }
                if (!snap_path.empty())
                    std::remove(snap_path.c_str());
                return;
            }
        },
        options.threads);
    return results;
}

namespace {

void
printSweepRows(const std::vector<SweepResult> &results, SweepStatus only,
               bool invert, std::ostream &out)
{
    out << "  workload      policy        arch      status          "
           "attempts  error\n";
    for (const SweepResult &r : results) {
        if (r.ok() || (r.status == only) == invert)
            continue;
        // First line of the error only: hang summaries are paragraphs.
        std::string brief = r.error;
        if (const auto nl = brief.find('\n'); nl != std::string::npos)
            brief.resize(nl);
        std::ostringstream row;
        row << "  " << r.spec.workload;
        for (std::size_t n = r.spec.workload.size(); n < 14; ++n)
            row << ' ';
        row << r.spec.policy;
        for (std::size_t n = r.spec.policy.size(); n < 14; ++n)
            row << ' ';
        row << r.spec.arch;
        for (std::size_t n = r.spec.arch.size(); n < 10; ++n)
            row << ' ';
        const std::string status = sweepStatusName(r.status);
        row << status;
        for (std::size_t n = status.size(); n < 16; ++n)
            row << ' ';
        row << r.attempts << "         " << brief;
        out << row.str() << '\n';
    }
}

} // namespace

int
reportSweepFailures(const std::vector<SweepResult> &results,
                    std::ostream &out)
{
    int failed = 0;
    int preempted = 0;
    for (const SweepResult &r : results) {
        if (r.status == SweepStatus::Preempted)
            ++preempted;
        else if (!r.ok())
            ++failed;
    }
    if (failed > 0) {
        out << "sweep: " << failed << " of " << results.size()
            << " cells failed\n";
        printSweepRows(results, SweepStatus::Preempted, true, out);
    }
    if (preempted > 0) {
        // Preemption is the run-control budget working as designed, not
        // a failure: the snapshot carries the progress into the next
        // run with the same --snapshot-dir.
        out << "sweep: " << preempted << " of " << results.size()
            << " cells resumable (preempted with snapshot kept; rerun "
               "to finish)\n";
        printSweepRows(results, SweepStatus::Preempted, false, out);
    }
    return failed;
}

int
sweepExitStatus(const std::vector<SweepResult> &results)
{
    bool preempted = false;
    for (const SweepResult &r : results) {
        if (r.status == SweepStatus::Preempted)
            preempted = true;
        else if (!r.ok())
            return 1;
    }
    return preempted ? 3 : 0;
}

std::vector<SweepCase>
sweepGrid(const std::vector<std::string> &workloads,
          const std::vector<std::string> &policies,
          const std::vector<std::pair<std::string, GpuConfig>> &configs,
          const CompileOptions &compile_options)
{
    std::vector<SweepCase> grid;
    grid.reserve(workloads.size() * policies.size() * configs.size());
    for (const auto &[arch, config] : configs) {
        for (const std::string &workload : workloads) {
            for (const std::string &policy : policies) {
                SweepCase c;
                c.workload = workload;
                c.policy = policy;
                c.arch = arch;
                c.config = config;
                c.compileOptions = compile_options;
                grid.push_back(std::move(c));
            }
        }
    }
    return grid;
}

SweepCli::SweepCli(int argc, char *const *argv)
{
    auto numberAfter = [&](int &i, const char *flag) {
        fatalIf(i + 1 >= argc, flag, " needs a value");
        const std::string text = argv[++i];
        try {
            std::size_t used = 0;
            const int v = std::stoi(text, &used);
            if (used == text.size() && v >= 0)
                return v;
        } catch (const std::exception &) {
        }
        fatal(flag, " needs a non-negative integer, got '", text, "'");
    };
    auto u64After = [&](int &i, const char *flag) -> std::uint64_t {
        fatalIf(i + 1 >= argc, flag, " needs a value");
        const std::string text = argv[++i];
        try {
            std::size_t used = 0;
            const unsigned long long v = std::stoull(text, &used);
            if (used == text.size())
                return v;
        } catch (const std::exception &) {
        }
        fatal(flag, " needs a non-negative integer, got '", text, "'");
    };
    auto secondsAfter = [&](int &i, const char *flag) -> double {
        fatalIf(i + 1 >= argc, flag, " needs a value");
        const std::string text = argv[++i];
        try {
            std::size_t used = 0;
            const double v = std::stod(text, &used);
            if (used == text.size() && v > 0.0)
                return v;
        } catch (const std::exception &) {
        }
        fatal(flag, " needs a positive number of seconds, got '", text,
              "'");
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--sms") {
            sms = numberAfter(i, "--sms");
            fatalIf(sms < 1, "--sms needs at least 1 SM");
        } else if (arg == "--threads") {
            threads = numberAfter(i, "--threads");
        } else if (arg == "--retries") {
            retries = numberAfter(i, "--retries");
        } else if (arg == "--checkpoint") {
            fatalIf(i + 1 >= argc, "--checkpoint needs a path");
            checkpoint = argv[++i];
        } else if (arg == "--fsync-every") {
            fsyncEvery = numberAfter(i, "--fsync-every");
        } else if (arg == "--max-cycles") {
            maxCycles = u64After(i, "--max-cycles");
        } else if (arg == "--wall-deadline") {
            wallDeadlineSeconds = secondsAfter(i, "--wall-deadline");
        } else if (arg == "--sanitize") {
            sanitize = true;
        } else if (arg == "--no-lint") {
            noLint = true;
        } else if (arg == "--snapshot-every") {
            snapshotEvery = u64After(i, "--snapshot-every");
        } else if (arg == "--snapshot-dir") {
            fatalIf(i + 1 >= argc, "--snapshot-dir needs a path");
            snapshotDir = argv[++i];
        }
        // Anything else belongs to the bench (e.g. --json).
    }
}

void
SweepCli::apply(GpuConfig &config, SweepOptions &options) const
{
    options.threads = threads;
    options.retries = retries;
    options.lint = !noLint;
    options.checkpointPath = checkpoint;
    options.fsyncEvery = fsyncEvery;
    options.snapshotDir = snapshotDir;
    options.gpu.control.maxCycles = maxCycles;
    options.gpu.control.sanitize = sanitize;
    if (wallDeadlineSeconds > 0.0)
        // One deadline for the whole sweep, fixed here so every cell
        // races the same clock regardless of when it gets scheduled.
        options.gpu.control = options.gpu.control.withWallDeadlineSeconds(
            wallDeadlineSeconds);
    options.gpu.snapshotEvery = snapshotEvery;
    if (sms > 1) {
        config.numSms = sms;
        options.gpu.mode = GpuOptions::Mode::FullMachine;
    }
}

} // namespace rm
