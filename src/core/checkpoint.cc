#include "core/checkpoint.hh"

#include <fstream>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "common/errors.hh"
#include "common/logging.hh"
#include "obs/export.hh"
#include "obs/json.hh"

namespace rm {

JsonlCheckpoint::JsonlCheckpoint(std::string path, int fsync_every)
    : path(std::move(path)), fsyncEvery(fsync_every)
{
    if (this->path.empty())
        return;
    std::ifstream in(this->path);
    if (!in)
        return;  // first run: nothing to replay
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);)
        lines.push_back(std::move(line));
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string &line = lines[i];
        if (line.empty())
            continue;
        try {
            const JsonValue doc = parseJson(line);
            const JsonValue *key = doc.find("key");
            const JsonValue *stats = doc.find("stats");
            if (key && stats) {
                restored[key->string] = statsFromJson(*stats);
                ++replayedCount;
            }
        } catch (const std::exception &) {
            // Records are appended and flushed atomically, so the only
            // expected damage is a torn final line from a run killed
            // mid-append: drop it. Anything earlier means the file was
            // damaged some other way — still skip, but say which line.
            if (i + 1 == lines.size())
                warn("checkpoint '", this->path,
                     "': dropping torn trailing record (line ", i + 1,
                     ")");
            else
                warn("checkpoint '", this->path,
                     "': skipping unparsable line ", i + 1);
        }
    }
}

const SimStats *
JsonlCheckpoint::find(const std::string &key) const
{
    // Lock-free by design: the index is immutable after construction
    // (record() appends to the file only), so parallel sweep cells can
    // probe it while others append.
    const auto it = restored.find(key);
    return it == restored.end() ? nullptr : &it->second;
}

void
JsonlCheckpoint::record(const std::string &key, const SimStats &stats)
{
    if (path.empty())
        return;
    JsonWriter w;
    w.beginObject();
    w.key("key").value(key);
    w.key("stats");
    statsToJson(w, stats);
    w.endObject();
    std::string line = w.take();
    line.push_back('\n');

    const std::lock_guard<std::mutex> lock(guard);
    // One open-append-close per record, the record plus its newline in
    // a single write(2): O_APPEND makes the line land whole, so a
    // concurrent reader (or a kill between records) sees complete
    // lines only, and at worst one torn trailing line — which the
    // loader tolerates. Failures are loud: a full disk must fail the
    // caller instead of silently dropping acknowledged records.
    const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT,
                          0644);
    fatalIf(fd < 0, "checkpoint: cannot append to '", path, "'");
    std::size_t done = 0;
    while (done < line.size()) {
        const ssize_t n =
            ::write(fd, line.data() + done, line.size() - done);
        if (n < 0) {
            ::close(fd);
            fatal("checkpoint: write to '", path, "' failed");
        }
        done += static_cast<std::size_t>(n);
    }
    ++appends;
    if (fsyncEvery > 0 && appends % static_cast<std::uint64_t>(
                                        fsyncEvery) == 0 &&
        ::fsync(fd) != 0) {
        ::close(fd);
        fatal("checkpoint: fsync of '", path, "' failed");
    }
    fatalIf(::close(fd) != 0, "checkpoint: close of '", path,
            "' failed");
}

void
JsonlCheckpoint::sync()
{
    const std::lock_guard<std::mutex> lock(guard);
    if (path.empty() || appends == 0)
        return;
    const int fd = ::open(path.c_str(), O_WRONLY);
    fatalIf(fd < 0, "checkpoint: cannot open '", path, "' for sync");
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    fatalIf(!ok, "checkpoint: fsync of '", path, "' failed");
}

} // namespace rm
