#ifndef RM_CORE_CHECKPOINT_HH
#define RM_CORE_CHECKPOINT_HH

/**
 * @file
 * Durable JSONL result store shared by the sweep runner's checkpoint
 * (core/sweep.hh) and the serve daemon's result journal (serve/). One
 * record per line:
 *
 *     {"key":"<sweepCaseKey>","stats":{...statsToJson...}}
 *
 * Appends are written as one whole line per system write so a reader
 * (or a kill between records) sees complete lines only; the loader
 * tolerates exactly one torn trailing line from a run killed
 * mid-append. With fsyncEvery > 0 every Nth append is additionally
 * fsync'd, so acknowledged records survive a host crash — not just a
 * process kill. fsyncEvery = 1 (the serve journal's default) makes
 * every acknowledgement durable; 0 keeps the seed behaviour (flush to
 * the kernel, no fsync) for throwaway sweep checkpoints.
 */

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "sim/stats.hh"

namespace rm {

/** Append-only JSONL store of SimStats keyed by a stable string. */
class JsonlCheckpoint
{
  public:
    /**
     * Open @p path (empty disables the store entirely) and replay any
     * existing records into the in-memory index. A torn trailing line
     * is warned about and dropped; earlier unparsable lines are warned
     * about and skipped.
     */
    explicit JsonlCheckpoint(std::string path, int fsync_every = 0);

    bool enabled() const { return !path.empty(); }

    /** Records replayed from an existing file at construction. */
    std::size_t replayed() const { return replayedCount; }

    /** The restored record for @p key; nullptr when absent. */
    const SimStats *find(const std::string &key) const;

    /**
     * Append one record (thread-safe). The in-memory index is NOT
     * updated — it is immutable after construction so find() stays
     * lock-free under parallel sweep cells. Throws FatalError when the
     * write cannot be completed — a full disk must fail the caller
     * loudly instead of silently dropping acknowledged work.
     */
    void record(const std::string &key, const SimStats &stats);

    /** fsync the file now (drain/shutdown barrier). No-op when
     *  disabled or nothing was ever written. */
    void sync();

  private:
    std::string path;
    int fsyncEvery = 0;
    std::uint64_t appends = 0;
    std::map<std::string, SimStats> restored;
    std::size_t replayedCount = 0;
    std::mutex guard;
};

} // namespace rm

#endif // RM_CORE_CHECKPOINT_HH
