#ifndef RM_CORE_POLICY_HH
#define RM_CORE_POLICY_HH

/**
 * @file
 * Policy registry: every register-allocation policy the repository
 * evaluates is described by one PolicySpec — how to compile a kernel
 * for it and how to build one SM's allocator instance — and looked up
 * by name. The facade runners (core/experiment.hh), the sweep runner
 * (core/sweep.hh), the benches and rm-inspect all draw policies from
 * here instead of hand-rolling per-policy compiler/allocator stacks.
 *
 * Built-ins: "baseline", "regmutex", "paired", "owf", "rfv". New
 * policies (or parameterized variants, e.g. a different RFV
 * provisioning) register through PolicyRegistry::add() and are then
 * available to every consumer, including sweep grids, by name.
 */

#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "compiler/pipeline.hh"
#include "isa/program.hh"
#include "sim/config.hh"
#include "sim/gpu.hh"

namespace rm {

/** A policy's compilation outcome. */
struct PolicyCompile
{
    /** The program the SMs execute (possibly transformed). */
    Program program;
    /**
     * Compiler metadata when the policy runs the RegMutex pipeline
     * (regmutex / paired / owf); empty for policies that execute the
     * input unchanged (baseline / rfv).
     */
    std::optional<CompileResult> compile;
};

/** One registered register-allocation policy. */
struct PolicySpec
{
    /** Registry key and report label ("baseline", "regmutex", ...). */
    std::string name;
    /** One-line description for --help style listings. */
    std::string summary;
    /**
     * Compile @p program for this policy. Must be pure: the sweep
     * runner invokes it concurrently from worker threads.
     */
    std::function<PolicyCompile(const Program &, const GpuConfig &,
                                const CompileOptions &)>
        compile;
    /**
     * Build and prepare one SM's allocator over the *compiled*
     * program (PolicyCompile::program). Invoked once per simulated SM
     * by the Gpu engine; see AllocatorFactory for the thread-safety
     * contract.
     */
    AllocatorFactory allocator;
    /**
     * Lint check ids (analysis/lint.hh) the sweep runner's static gate
     * suppresses for this policy's compiled programs. OWF executes a
     * directive-stripped program whose acquire semantics live in
     * hardware locks, so the path-sensitive hold-state check does not
     * apply to it.
     */
    std::vector<std::string> lintSuppressions;
};

/**
 * Name-indexed policy registry. The singleton instance() comes
 * pre-populated with the five built-in policies; add() registers (or
 * replaces) additional ones. All operations are thread-safe; the
 * PolicySpec pointers/references returned stay valid for the
 * registry's lifetime.
 */
class PolicyRegistry
{
  public:
    /** The process-wide registry, built-ins pre-registered. */
    static PolicyRegistry &instance();

    /** Register @p spec, replacing any existing policy of that name. */
    void add(PolicySpec spec);

    /** Lookup; nullptr when unknown. */
    const PolicySpec *find(const std::string &name) const;

    /** Lookup; throws FatalError naming the known policies when unknown. */
    const PolicySpec &at(const std::string &name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

  private:
    PolicyRegistry();

    mutable std::mutex guard;
    /** Node-stable container: spec addresses survive later add()s. */
    std::map<std::string, PolicySpec> specs;
};

/**
 * An RFV PolicySpec with a custom occupancy provisioning (the built-in
 * "rfv" uses the paper's 0.25). Register it under a distinct name to
 * sweep provisioning levels.
 */
PolicySpec makeRfvPolicy(double provisioning,
                         std::string name = "rfv");

} // namespace rm

#endif // RM_CORE_POLICY_HH
