#ifndef RM_CORE_SWEEP_HH
#define RM_CORE_SWEEP_HH

/**
 * @file
 * Parallel sweep runner: executes a (workload × policy × config) grid
 * of simulations on the shared thread pool with deterministic seeding
 * and deterministic result ordering. This is the engine behind the
 * figure/table benches — each bench declares its grid, calls
 * runSweep(), and formats the results — and the building block for any
 * future batch/sharding layer.
 *
 *     std::vector<rm::SweepCase> grid = rm::sweepGrid(
 *         rm::occupancyLimitedSet(), {"baseline", "regmutex"},
 *         {{"GTX480", rm::gtx480Config()}});
 *     auto results = rm::runSweep(grid);
 *     // results[i] corresponds to grid[i], independent of timing.
 *
 * Determinism: every cell simulates with the same base memory seed
 * (per-SM partitions derive from it inside the Gpu engine), cells are
 * fully independent, and results are stored by case index — so a sweep
 * is bit-identical for any thread count, including serial.
 */

#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hh"
#include "core/policy.hh"
#include "isa/program.hh"
#include "sim/config.hh"
#include "sim/gpu.hh"

namespace rm {

/** One cell of a sweep grid. */
struct SweepCase
{
    /** Suite workload name (workloads/suite.hh) — buildWorkload input. */
    std::string workload;
    /** Registered policy name (core/policy.hh). */
    std::string policy;
    /** Architecture label for reports ("GTX480", "half-RF", ...). */
    std::string arch = "GTX480";
    GpuConfig config = gtx480Config();
    CompileOptions compileOptions;
};

/** Sweep-level execution knobs. */
struct SweepOptions
{
    /**
     * Case-level parallelism: 0 (default) uses the shared pool's full
     * width, 1 runs serially, k > 1 caps concurrent cases at k.
     * Results are identical for any value.
     */
    int threads = 0;
    /**
     * Per-case engine options. The default (Representative mode,
     * gpu.threads = 1) matches the seed benches; switch mode to
     * FullMachine for real multi-SM runs. Observability sinks are
     * ignored here — per-case sinks cannot be shared across parallel
     * cells; use runPolicy() directly to instrument a single run.
     */
    GpuOptions gpu;
};

/** One cell's outcome; results[i] corresponds to cases[i]. */
struct SweepResult
{
    SweepCase spec;
    PolicyCompile compile;
    GpuResult run;

    /** Machine-level statistics (per-SM breakdown is in run.perSm). */
    const SimStats &stats() const { return run.aggregate; }
};

/**
 * Execute every case, in parallel over the shared thread pool, and
 * return the results in case order. Workload programs are built once
 * per distinct name before the parallel phase. Throws (first error
 * wins) when any cell's workload, policy or simulation fails.
 */
std::vector<SweepResult> runSweep(const std::vector<SweepCase> &cases,
                                  const SweepOptions &options = {});

/**
 * Cross-product helper: one case per (workload, policy, config),
 * configs ordered outermost, then workloads, then policies — i.e.
 * grid[(c * W + w) * P + p].
 */
std::vector<SweepCase>
sweepGrid(const std::vector<std::string> &workloads,
          const std::vector<std::string> &policies,
          const std::vector<std::pair<std::string, GpuConfig>> &configs,
          const CompileOptions &compile_options = {});

/**
 * Shared bench command-line handling for the sweep-driven benches:
 * `--sms N` selects a full-machine run with N SMs (N = 1 keeps the
 * representative seed model), `--threads N` caps sweep parallelism
 * (0 = shared pool width). Unrecognized arguments are ignored so it
 * composes with BenchReport's `--json`.
 */
struct SweepCli
{
    int sms = 1;
    int threads = 0;

    SweepCli(int argc, char *const *argv);

    /** Fold the flags into a bench's config and sweep options. */
    void apply(GpuConfig &config, SweepOptions &options) const;
};

} // namespace rm

#endif // RM_CORE_SWEEP_HH
