#ifndef RM_CORE_SWEEP_HH
#define RM_CORE_SWEEP_HH

/**
 * @file
 * Parallel sweep runner: executes a (workload × policy × config) grid
 * of simulations on the shared thread pool with deterministic seeding
 * and deterministic result ordering. This is the engine behind the
 * figure/table benches — each bench declares its grid, calls
 * runSweep(), and formats the results — and the building block for any
 * future batch/sharding layer.
 *
 *     std::vector<rm::SweepCase> grid = rm::sweepGrid(
 *         rm::occupancyLimitedSet(), {"baseline", "regmutex"},
 *         {{"GTX480", rm::gtx480Config()}});
 *     auto results = rm::runSweep(grid);
 *     // results[i] corresponds to grid[i], independent of timing.
 *
 * Determinism: every cell simulates with the same base memory seed
 * (per-SM partitions derive from it inside the Gpu engine), cells are
 * fully independent, and results are stored by case index — so a sweep
 * is bit-identical for any thread count, including serial.
 */

#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hh"
#include "core/policy.hh"
#include "isa/program.hh"
#include "sim/config.hh"
#include "sim/diagnosis.hh"
#include "sim/fault.hh"
#include "sim/gpu.hh"

namespace rm {

/** One cell of a sweep grid. */
struct SweepCase
{
    /** Suite workload name (workloads/suite.hh) — buildWorkload input. */
    std::string workload;
    /** Registered policy name (core/policy.hh). */
    std::string policy;
    /** Architecture label for reports ("GTX480", "half-RF", ...). */
    std::string arch = "GTX480";
    GpuConfig config = gtx480Config();
    CompileOptions compileOptions;
    /**
     * Per-cell fault-injection plan (sim/fault.hh), applied to faultSm
     * (-1: all SMs) of this cell only. The default plan injects
     * nothing; cells with distinct plans get distinct checkpoint keys.
     */
    FaultPlan fault;
    int faultSm = 0;
};

/** How one sweep cell ended. */
enum class SweepStatus {
    Ok,             ///< simulation completed
    CompileFailed,  ///< workload build / policy lookup / compile threw
    LintFailed,     ///< compiled program failed the static lint suite
    SimFailed,      ///< the simulation threw a non-hang error
    Deadlocked,     ///< declared deadlock or watchdog expiry
    Preempted,      ///< stopped by a RunControl limit; snapshot kept
};

/** Stable lower-case label ("ok", "compile-failed", ...). */
const char *sweepStatusName(SweepStatus status);

/** Sweep-level execution knobs. */
struct SweepOptions
{
    /**
     * Case-level parallelism: 0 (default) uses the shared pool's full
     * width, 1 runs serially, k > 1 caps concurrent cases at k.
     * Results are identical for any value.
     */
    int threads = 0;
    /**
     * Per-case engine options. The default (Representative mode,
     * gpu.threads = 1) matches the seed benches; switch mode to
     * FullMachine for real multi-SM runs. Observability sinks are
     * ignored here — per-case sinks cannot be shared across parallel
     * cells; use runPolicy() directly to instrument a single run.
     */
    GpuOptions gpu;
    /**
     * Extra simulation attempts after a SimFailed/Deadlocked cell (0 =
     * fail immediately). Each retry reseeds memory deterministically
     * (base seed + attempt index), so retried sweeps stay reproducible.
     * Compile failures never retry — they are deterministic.
     */
    int retries = 0;
    /**
     * Run the static lint suite (analysis/lint.hh) over every cell's
     * compiled program before simulating it; a cell with any
     * error-severity finding is marked LintFailed and never reaches
     * the engine — turning a would-be simulated deadlock or silent
     * corruption into a static diagnosis. Per-policy suppressions
     * come from PolicySpec::lintSuppressions.
     */
    bool lint = true;
    /**
     * JSONL checkpoint path; empty disables checkpointing. Every Ok
     * cell appends (and flushes) one line as it completes, and a
     * re-run with the same path restores matching cells (by
     * sweepCaseKey) instead of simulating them again. A torn trailing
     * line from a killed run is warned about and dropped. Restored
     * cells have fromCheckpoint set and an empty per-SM breakdown
     * (only the aggregate is persisted).
     */
    std::string checkpointPath;
    /**
     * fsync the checkpoint file after every Nth appended record (0,
     * the default, keeps the seed behaviour: flushed to the kernel but
     * not fsync'd, so a *host* crash — not just a killed process — can
     * lose trailing records). The serve daemon journals with
     * fsyncEvery = 1 so every acknowledged cell is durable; sweeps
     * that want the same guarantee opt in via --fsync-every.
     */
    int fsyncEvery = 0;
    /**
     * Directory for per-cell engine snapshots (sim/snapshot.hh); empty
     * disables them. Each cell writes <dir>/<key-hash>.snap — on every
     * gpu.snapshotEvery boundary and when preempted — and a later
     * sweep with the same directory resumes the cell from that file
     * instead of restarting it (the file is removed once the cell
     * completes). Works together with gpu.control: bound a sweep with
     * a cycle budget / wall deadline / cancellation token and the
     * interrupted cells carry their progress into the next run. A
     * stale or mismatched snapshot is warned about, deleted, and the
     * cell restarts fresh.
     */
    std::string snapshotDir;
};

/** One cell's outcome; results[i] corresponds to cases[i]. */
struct SweepResult
{
    SweepCase spec;
    PolicyCompile compile;
    GpuResult run;

    SweepStatus status = SweepStatus::Ok;
    /** Failure message (empty when ok). */
    std::string error;
    /** Hang forensics for Deadlocked cells; null otherwise. */
    std::shared_ptr<const HangDiagnosis> diagnosis;
    /** Simulation attempts performed (0: compile failed / restored). */
    int attempts = 0;
    /** True when restored from the checkpoint instead of simulated. */
    bool fromCheckpoint = false;

    bool ok() const { return status == SweepStatus::Ok; }

    /** Machine-level statistics (per-SM breakdown is in run.perSm). */
    const SimStats &stats() const { return run.aggregate; }
};

/**
 * Execute every case, in parallel over the shared thread pool, and
 * return the results in case order. Failures are isolated per cell:
 * a cell that fails to build, compile, or simulate — or that
 * deadlocks — records its SweepStatus, error and (for hangs) the
 * HangDiagnosis on its SweepResult while every other cell runs to
 * completion. runSweep itself only throws on infrastructure errors
 * (e.g. an unwritable checkpoint file).
 */
std::vector<SweepResult> runSweep(const std::vector<SweepCase> &cases,
                                  const SweepOptions &options = {});

/**
 * Stable identity of a cell for checkpointing: workload, policy, arch,
 * a fingerprint of the GpuConfig, compile options and fault plan.
 * Cells that would simulate differently get different keys.
 */
std::string sweepCaseKey(const SweepCase &spec);

/**
 * Print a summary table of the non-Ok cells to @p out (nothing when
 * all cells passed) and return the number of *failed* cells. Preempted
 * cells are not failures: they are listed in a separate "resumable"
 * section — their snapshots carry the progress into the next run —
 * and do not count toward the returned total.
 */
int reportSweepFailures(const std::vector<SweepResult> &results,
                        std::ostream &out);

/**
 * Exit status a sweep-driven bench should propagate, matching the
 * rm-inspect contract (docs/OBSERVABILITY.md): 0 when every cell
 * completed, 3 when cells were preempted but none failed (resumable —
 * rerun with the same --checkpoint/--snapshot-dir to finish), 1 when
 * any cell actually failed.
 */
int sweepExitStatus(const std::vector<SweepResult> &results);

/**
 * Cross-product helper: one case per (workload, policy, config),
 * configs ordered outermost, then workloads, then policies — i.e.
 * grid[(c * W + w) * P + p].
 */
std::vector<SweepCase>
sweepGrid(const std::vector<std::string> &workloads,
          const std::vector<std::string> &policies,
          const std::vector<std::pair<std::string, GpuConfig>> &configs,
          const CompileOptions &compile_options = {});

/**
 * Shared bench command-line handling for the sweep-driven benches:
 * `--sms N` selects a full-machine run with N SMs (N = 1 keeps the
 * representative seed model), `--threads N` caps sweep parallelism
 * (0 = shared pool width), `--retries N` re-runs failed cells, and
 * `--checkpoint PATH` enables the JSONL resume file (with
 * `--fsync-every N` fsyncing it every Nth record). Run-control
 * flags: `--max-cycles N` bounds every cell's simulated clock,
 * `--wall-deadline SECONDS` preempts cells still running when the
 * wall-clock budget expires, `--sanitize` audits register accounting
 * every epoch, `--no-lint` skips the pre-simulation lint gate, and
 * `--snapshot-every N` with `--snapshot-dir DIR` persists per-cell
 * snapshots so an interrupted sweep resumes instead of restarting.
 * Unrecognized arguments are ignored so it composes with BenchReport's
 * `--json`.
 */
struct SweepCli
{
    int sms = 1;
    int threads = 0;
    int retries = 0;
    std::string checkpoint;
    int fsyncEvery = 0;
    std::uint64_t maxCycles = 0;
    double wallDeadlineSeconds = 0.0;
    bool sanitize = false;
    bool noLint = false;
    std::uint64_t snapshotEvery = 0;
    std::string snapshotDir;

    SweepCli(int argc, char *const *argv);

    /** Fold the flags into a bench's config and sweep options. */
    void apply(GpuConfig &config, SweepOptions &options) const;
};

} // namespace rm

#endif // RM_CORE_SWEEP_HH
