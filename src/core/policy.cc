#include "core/policy.hh"

#include <utility>

#include "baselines/baseline.hh"
#include "baselines/owf.hh"
#include "baselines/rfv.hh"
#include "common/errors.hh"
#include "compiler/edit.hh"
#include "regmutex/allocator.hh"

namespace rm {

namespace {

/** Identity compilation for policies that execute the input as-is. */
PolicyCompile
passThrough(const Program &program, const GpuConfig &,
            const CompileOptions &)
{
    return PolicyCompile{program, std::nullopt};
}

PolicySpec
baselinePolicy()
{
    PolicySpec spec;
    spec.name = "baseline";
    spec.summary = "static exclusive per-warp allocation (paper Sec. II)";
    spec.compile = passThrough;
    spec.allocator = [](const GpuConfig &config, const Program &program) {
        auto allocator = std::make_unique<BaselineAllocator>();
        allocator->prepare(config, program);
        PreparedAllocator prepared;
        prepared.mapper = allocator->makeMapper();
        prepared.allocator = std::move(allocator);
        return prepared;
    };
    return spec;
}

PolicySpec
regmutexPolicy()
{
    PolicySpec spec;
    spec.name = "regmutex";
    spec.summary = "pooled SRP time-sharing (paper Sec. III-B)";
    spec.compile = [](const Program &program, const GpuConfig &config,
                      const CompileOptions &options) {
        CompileResult compiled = compileRegMutex(program, config, options);
        Program executed = compiled.program;
        return PolicyCompile{std::move(executed), std::move(compiled)};
    };
    spec.allocator = [](const GpuConfig &config, const Program &program) {
        auto allocator = std::make_unique<RegMutexAllocator>();
        allocator->prepare(config, program);
        PreparedAllocator prepared;
        prepared.mapper = allocator->makeMapper();
        prepared.allocator = std::move(allocator);
        return prepared;
    };
    return spec;
}

PolicySpec
pairedPolicy()
{
    PolicySpec spec;
    spec.name = "paired";
    spec.summary = "paired-warps RegMutex specialization (Sec. III-C)";
    spec.compile = [](const Program &program, const GpuConfig &config,
                      const CompileOptions &options) {
        CompileResult compiled = compileRegMutex(program, config, options);
        Program executed = compiled.program;
        return PolicyCompile{std::move(executed), std::move(compiled)};
    };
    spec.allocator = [](const GpuConfig &config, const Program &program) {
        auto allocator = std::make_unique<PairedRegMutexAllocator>();
        allocator->prepare(config, program);
        PreparedAllocator prepared;
        prepared.mapper = allocator->makeMapper();
        prepared.allocator = std::move(allocator);
        return prepared;
    };
    return spec;
}

PolicySpec
owfPolicy()
{
    PolicySpec spec;
    spec.name = "owf";
    spec.summary =
        "Jatala et al. pairwise sharing with owner-warp-first scheduling";
    // OWF shares the same compacted upper register set as RegMutex but
    // drives it with hardware locks instead of directives, so the
    // executed program is the RegMutex compilation with the directives
    // stripped.
    spec.compile = [](const Program &program, const GpuConfig &config,
                      const CompileOptions &options) {
        CompileResult compiled = compileRegMutex(program, config, options);
        Program executed = stripDirectives(compiled.program);
        return PolicyCompile{std::move(executed), std::move(compiled)};
    };
    spec.allocator = [](const GpuConfig &config, const Program &program) {
        auto allocator = std::make_unique<OwfAllocator>();
        allocator->prepare(config, program);
        PreparedAllocator prepared;
        prepared.allocator = std::move(allocator);
        return prepared;
    };
    // The stripped program accesses extended registers with no acquire
    // in sight — that is the point of OWF's hardware locking.
    spec.lintSuppressions = {"RM001"};
    return spec;
}

} // namespace

PolicySpec
makeRfvPolicy(double provisioning, std::string name)
{
    PolicySpec spec;
    spec.name = std::move(name);
    spec.summary = "Jeon et al. register file virtualization";
    spec.compile = passThrough;
    spec.allocator = [provisioning](const GpuConfig &config,
                                    const Program &program) {
        auto allocator = std::make_unique<RfvAllocator>(provisioning);
        allocator->prepare(config, program);
        PreparedAllocator prepared;
        prepared.allocator = std::move(allocator);
        return prepared;
    };
    return spec;
}

PolicyRegistry::PolicyRegistry()
{
    auto put = [&](PolicySpec spec) {
        std::string key = spec.name;
        specs.emplace(std::move(key), std::move(spec));
    };
    put(baselinePolicy());
    put(regmutexPolicy());
    put(pairedPolicy());
    put(owfPolicy());
    put(makeRfvPolicy(0.25));
}

PolicyRegistry &
PolicyRegistry::instance()
{
    static PolicyRegistry registry;
    return registry;
}

void
PolicyRegistry::add(PolicySpec spec)
{
    fatalIf(spec.name.empty(), "PolicyRegistry: policy without a name");
    fatalIf(!spec.compile || !spec.allocator,
            "PolicyRegistry: policy '", spec.name,
            "' must provide compile and allocator hooks");
    const std::lock_guard<std::mutex> lock(guard);
    specs[spec.name] = std::move(spec);
}

const PolicySpec *
PolicyRegistry::find(const std::string &name) const
{
    const std::lock_guard<std::mutex> lock(guard);
    const auto it = specs.find(name);
    return it == specs.end() ? nullptr : &it->second;
}

const PolicySpec &
PolicyRegistry::at(const std::string &name) const
{
    const PolicySpec *spec = find(name);
    if (!spec) {
        std::string known;
        for (const std::string &n : names())
            known += known.empty() ? n : ", " + n;
        fatal("unknown policy '", name, "' (known: ", known, ")");
    }
    return *spec;
}

std::vector<std::string>
PolicyRegistry::names() const
{
    const std::lock_guard<std::mutex> lock(guard);
    std::vector<std::string> out;
    out.reserve(specs.size());
    for (const auto &[name, spec] : specs)
        out.push_back(name);
    return out;
}

} // namespace rm
