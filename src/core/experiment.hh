#ifndef RM_CORE_EXPERIMENT_HH
#define RM_CORE_EXPERIMENT_HH

/**
 * @file
 * Public facade of the RegMutex library: compile-and-simulate entry
 * points driven by the policy registry (core/policy.hh) and the
 * multi-SM Gpu engine (sim/gpu.hh). runPolicy() is the general entry
 * point — any registered policy, representative or full-machine mode,
 * per-SM breakdowns; the named run* helpers keep the paper benchmarks
 * one-liners:
 *
 *     auto base = rm::runBaseline(program, config);
 *     auto rmx  = rm::runRegMutex(program, config);
 *     std::cout << rm::cycleReduction(base, rmx.stats);
 */

#include <string>

#include "compiler/pipeline.hh"
#include "core/policy.hh"
#include "isa/program.hh"
#include "sim/config.hh"
#include "sim/gpu.hh"
#include "sim/stats.hh"

namespace rm {

/** Knobs of one runPolicy() invocation. */
struct RunOptions
{
    CompileOptions compile;
    /**
     * Engine options: mode (Representative vs FullMachine), SM
     * parallelism, memory seed, and observability sinks (gpu.obs
     * attaches to SM 0; gpu.sinksForSm covers every SM).
     */
    GpuOptions gpu;
};

/** Result of one policy run: compiler output plus the engine result. */
struct PolicyRun
{
    PolicyCompile compile;
    GpuResult result;

    /** Machine-level statistics (the per-SM breakdown is in result). */
    const SimStats &stats() const { return result.aggregate; }
};

/** Compile and simulate @p program under the registered @p policy. */
PolicyRun runPolicy(const std::string &policy, const Program &program,
                    const GpuConfig &config,
                    const RunOptions &options = {});

/** Same, with an unregistered (ad-hoc) policy specification. */
PolicyRun runPolicy(const PolicySpec &policy, const Program &program,
                    const GpuConfig &config,
                    const RunOptions &options = {});

/** Result of a RegMutex (or paired) compile-and-run. */
struct RegMutexRun
{
    CompileResult compile;
    SimStats stats;
};

/**
 * Simulate under the baseline static allocation (paper Fig. 6a).
 * Every runner takes optional observability sinks (issue trace,
 * metrics registry, interval sampler — see sim/gpu.hh and src/obs/)
 * threaded into the simulation it drives. The run* helpers simulate
 * the representative SM (the seed model); use runPolicy() for
 * full-machine runs.
 */
SimStats runBaseline(const Program &program, const GpuConfig &config,
                     const ObsSinks &obs = {});

/**
 * Compile with the RegMutex pipeline and simulate under the pooled
 * allocator, with the Fig. 6b operand mapping verified on every
 * access. Falls back to baseline behaviour when the heuristic leaves
 * the kernel untouched.
 */
RegMutexRun runRegMutex(const Program &program, const GpuConfig &config,
                        const CompileOptions &options = {},
                        const ObsSinks &obs = {});

/** Same, under the paired-warps specialization (paper Sec. III-C). */
RegMutexRun runPaired(const Program &program, const GpuConfig &config,
                      const CompileOptions &options = {},
                      const ObsSinks &obs = {});

/**
 * Jatala et al. resource sharing with Owner-Warp-First scheduling: the
 * RegMutex-compacted register layout with directives stripped, under
 * the pairwise one-shot lock.
 */
SimStats runOwf(const Program &program, const GpuConfig &config,
                const CompileOptions &options = {},
                const ObsSinks &obs = {});

/** Jeon et al. Register File Virtualization on the original program. */
SimStats runRfv(const Program &program, const GpuConfig &config,
                double provisioning = 0.25, const ObsSinks &obs = {});

} // namespace rm

#endif // RM_CORE_EXPERIMENT_HH
