#include "core/experiment.hh"

namespace rm {

namespace {

/** run* convenience: representative mode with sinks on the one SM. */
RunOptions
representative(const CompileOptions &compile, const ObsSinks &obs)
{
    RunOptions options;
    options.compile = compile;
    options.gpu.obs = obs;
    return options;
}

} // namespace

PolicyRun
runPolicy(const PolicySpec &policy, const Program &program,
          const GpuConfig &config, const RunOptions &options)
{
    PolicyRun run;
    run.compile = policy.compile(program, config, options.compile);
    run.result =
        simulateGpu(config, run.compile.program, policy.allocator,
                    options.gpu);
    return run;
}

PolicyRun
runPolicy(const std::string &policy, const Program &program,
          const GpuConfig &config, const RunOptions &options)
{
    return runPolicy(PolicyRegistry::instance().at(policy), program,
                     config, options);
}

SimStats
runBaseline(const Program &program, const GpuConfig &config,
            const ObsSinks &obs)
{
    return runPolicy("baseline", program, config,
                     representative({}, obs))
        .result.aggregate;
}

RegMutexRun
runRegMutex(const Program &program, const GpuConfig &config,
            const CompileOptions &options, const ObsSinks &obs)
{
    PolicyRun run = runPolicy("regmutex", program, config,
                              representative(options, obs));
    return RegMutexRun{std::move(*run.compile.compile),
                       std::move(run.result.aggregate)};
}

RegMutexRun
runPaired(const Program &program, const GpuConfig &config,
          const CompileOptions &options, const ObsSinks &obs)
{
    PolicyRun run = runPolicy("paired", program, config,
                              representative(options, obs));
    return RegMutexRun{std::move(*run.compile.compile),
                       std::move(run.result.aggregate)};
}

SimStats
runOwf(const Program &program, const GpuConfig &config,
       const CompileOptions &options, const ObsSinks &obs)
{
    return runPolicy("owf", program, config, representative(options, obs))
        .result.aggregate;
}

SimStats
runRfv(const Program &program, const GpuConfig &config, double provisioning,
       const ObsSinks &obs)
{
    // The registered "rfv" uses the paper's 0.25; other provisioning
    // levels run through an ad-hoc spec so callers can still sweep it.
    if (provisioning == 0.25) {
        return runPolicy("rfv", program, config, representative({}, obs))
            .result.aggregate;
    }
    return runPolicy(makeRfvPolicy(provisioning), program, config,
                     representative({}, obs))
        .result.aggregate;
}

} // namespace rm
