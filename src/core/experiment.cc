#include "core/experiment.hh"

#include "baselines/baseline.hh"
#include "baselines/owf.hh"
#include "baselines/rfv.hh"
#include "compiler/edit.hh"
#include "regmutex/allocator.hh"
#include "sim/gpu.hh"

namespace rm {

SimStats
runBaseline(const Program &program, const GpuConfig &config)
{
    BaselineAllocator allocator;
    allocator.prepare(config, program);
    SimOptions options;
    options.mapper = allocator.makeMapper();
    return simulate(config, program, allocator, std::move(options),
                    /*prepare_allocator=*/false);
}

RegMutexRun
runRegMutex(const Program &program, const GpuConfig &config,
            const CompileOptions &options)
{
    RegMutexRun run;
    run.compile = compileRegMutex(program, config, options);

    RegMutexAllocator allocator;
    allocator.prepare(config, run.compile.program);
    SimOptions sim_options;
    sim_options.mapper = allocator.makeMapper();
    run.stats = simulate(config, run.compile.program, allocator,
                         std::move(sim_options),
                         /*prepare_allocator=*/false);
    return run;
}

RegMutexRun
runPaired(const Program &program, const GpuConfig &config,
          const CompileOptions &options)
{
    RegMutexRun run;
    run.compile = compileRegMutex(program, config, options);

    PairedRegMutexAllocator allocator;
    allocator.prepare(config, run.compile.program);
    SimOptions sim_options;
    sim_options.mapper = allocator.makeMapper();
    run.stats = simulate(config, run.compile.program, allocator,
                         std::move(sim_options),
                         /*prepare_allocator=*/false);
    return run;
}

SimStats
runOwf(const Program &program, const GpuConfig &config,
       const CompileOptions &options)
{
    // OWF shares the same compacted upper register set as RegMutex but
    // drives it with hardware locks instead of directives.
    const CompileResult compiled =
        compileRegMutex(program, config, options);
    const Program stripped = stripDirectives(compiled.program);

    OwfAllocator allocator;
    return simulate(config, stripped, allocator);
}

SimStats
runRfv(const Program &program, const GpuConfig &config, double provisioning)
{
    RfvAllocator allocator(provisioning);
    return simulate(config, program, allocator);
}

} // namespace rm
