#include "core/experiment.hh"

#include "baselines/baseline.hh"
#include "baselines/owf.hh"
#include "baselines/rfv.hh"
#include "compiler/edit.hh"
#include "regmutex/allocator.hh"
#include "sim/gpu.hh"

namespace rm {

namespace {

/** Copy the caller's observability sinks into a runner's SimOptions. */
void
attachSinks(SimOptions &options, const ObsSinks &obs)
{
    options.trace = obs.trace;
    options.metrics = obs.metrics;
    options.sampler = obs.sampler;
}

} // namespace

SimStats
runBaseline(const Program &program, const GpuConfig &config,
            const ObsSinks &obs)
{
    BaselineAllocator allocator;
    allocator.prepare(config, program);
    SimOptions options;
    options.mapper = allocator.makeMapper();
    attachSinks(options, obs);
    return simulate(config, program, allocator, std::move(options),
                    /*prepare_allocator=*/false);
}

RegMutexRun
runRegMutex(const Program &program, const GpuConfig &config,
            const CompileOptions &options, const ObsSinks &obs)
{
    RegMutexRun run;
    run.compile = compileRegMutex(program, config, options);

    RegMutexAllocator allocator;
    allocator.prepare(config, run.compile.program);
    SimOptions sim_options;
    sim_options.mapper = allocator.makeMapper();
    attachSinks(sim_options, obs);
    run.stats = simulate(config, run.compile.program, allocator,
                         std::move(sim_options),
                         /*prepare_allocator=*/false);
    return run;
}

RegMutexRun
runPaired(const Program &program, const GpuConfig &config,
          const CompileOptions &options, const ObsSinks &obs)
{
    RegMutexRun run;
    run.compile = compileRegMutex(program, config, options);

    PairedRegMutexAllocator allocator;
    allocator.prepare(config, run.compile.program);
    SimOptions sim_options;
    sim_options.mapper = allocator.makeMapper();
    attachSinks(sim_options, obs);
    run.stats = simulate(config, run.compile.program, allocator,
                         std::move(sim_options),
                         /*prepare_allocator=*/false);
    return run;
}

SimStats
runOwf(const Program &program, const GpuConfig &config,
       const CompileOptions &options, const ObsSinks &obs)
{
    // OWF shares the same compacted upper register set as RegMutex but
    // drives it with hardware locks instead of directives.
    const CompileResult compiled =
        compileRegMutex(program, config, options);
    const Program stripped = stripDirectives(compiled.program);

    OwfAllocator allocator;
    SimOptions sim_options;
    attachSinks(sim_options, obs);
    return simulate(config, stripped, allocator, std::move(sim_options));
}

SimStats
runRfv(const Program &program, const GpuConfig &config, double provisioning,
       const ObsSinks &obs)
{
    RfvAllocator allocator(provisioning);
    SimOptions sim_options;
    attachSinks(sim_options, obs);
    return simulate(config, program, allocator, std::move(sim_options));
}

} // namespace rm
