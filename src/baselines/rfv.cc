#include "baselines/rfv.hh"

#include <algorithm>
#include <cmath>

#include "analysis/cfg.hh"
#include "analysis/liveness.hh"
#include "common/errors.hh"
#include "sim/occupancy.hh"

namespace rm {

void
RfvAllocator::prepare(const GpuConfig &config, const Program &program)
{
    freed = false;
    spills = 0;
    prog = &program;
    spillPenalty = config.globalLatency;
    physFree = config.registersPerSm / config.warpSize;

    // Compiler-side dead-register information: a register referenced at
    // pc and absent from live-out dies when pc issues.
    const Cfg cfg = Cfg::build(program);
    const Liveness liveness = Liveness::compute(program, cfg);
    deaths.assign(program.code.size(), {});
    for (std::size_t i = 0; i < program.code.size(); ++i) {
        const Instruction &inst = program.code[i];
        const int idx = static_cast<int>(i);
        auto dies = [&](RegId r) {
            return !liveness.isLiveOut(idx, r);
        };
        if (inst.hasDst() && dies(inst.dst))
            deaths[i].push_back(inst.dst);
        for (int s = 0; s < inst.numSrcs; ++s) {
            const RegId r = inst.srcs[s];
            if (dies(r) &&
                std::find(deaths[i].begin(), deaths[i].end(), r) ==
                    deaths[i].end()) {
                deaths[i].push_back(r);
            }
        }
    }

    // Provision occupancy between the static-average and peak live
    // counts: most registers are dead most of the time (paper Sec. II),
    // so more CTAs fit than the static allocation admits.
    const std::vector<int> counts = liveness.liveCounts();
    double avg = 0.0;
    int peak = 1;
    for (int c : counts) {
        avg += c;
        peak = std::max(peak, c);
    }
    avg = counts.empty() ? 1.0 : avg / static_cast<double>(counts.size());
    estDemand = std::max(
        2, static_cast<int>(std::ceil(avg + provisioning * (peak - avg))));

    const Occupancy occ =
        computeOccupancy(config, estDemand, program.info.ctaThreads,
                         program.info.sharedBytesPerCta);
    maxCtas = occ.ctasPerSm;
    fatalIf(maxCtas <= 0, "RfvAllocator: kernel '", program.info.name,
            "' does not fit under the provisioned demand");
}

void
RfvAllocator::onWarpLaunch(SimWarp &warp)
{
    warp.physMapped.clearAll();
}

int
RfvAllocator::packsNeeded(const SimWarp &warp,
                          const Instruction &inst) const
{
    int need = 0;
    auto count = [&](RegId r) {
        if (!warp.physMapped.test(r))
            ++need;
    };
    // Sources first (reading an as-yet-unmapped register allocates the
    // zero-initialized pack); skip duplicates against the destination.
    for (int s = 0; s < inst.numSrcs; ++s)
        count(inst.srcs[s]);
    if (inst.hasDst() && !warp.physMapped.test(inst.dst)) {
        bool dup = false;
        for (int s = 0; s < inst.numSrcs; ++s)
            dup |= inst.srcs[s] == inst.dst;
        if (!dup)
            ++need;
    }
    // Duplicate sources would be double counted; correct for them.
    if (inst.numSrcs >= 2 && inst.srcs[0] == inst.srcs[1] &&
        !warp.physMapped.test(inst.srcs[0])) {
        --need;
    }
    if (inst.numSrcs == 3 &&
        (inst.srcs[2] == inst.srcs[0] || inst.srcs[2] == inst.srcs[1]) &&
        !warp.physMapped.test(inst.srcs[2])) {
        --need;
    }
    return need;
}

bool
RfvAllocator::canIssue(const SimWarp &warp, const Instruction &inst) const
{
    const int need = packsNeeded(warp, inst);
    // need == 0 must always pass: an emergency overdraft can leave the
    // pool negative while fully mapped warps keep running.
    return need == 0 || need <= physFree;
}

void
RfvAllocator::mapOperands(SimWarp &warp, const Instruction &inst)
{
    auto map = [&](RegId r) {
        if (!warp.physMapped.test(r)) {
            warp.physMapped.set(r);
            --physFree;
        }
    };
    for (int s = 0; s < inst.numSrcs; ++s)
        map(inst.srcs[s]);
    if (inst.hasDst())
        map(inst.dst);
}

void
RfvAllocator::onIssued(SimWarp &warp, const Instruction &inst, int pc)
{
    mapOperands(warp, inst);
    // Release registers whose live range ends here (renaming-table
    // entry freed by the dead-register information).
    for (RegId r : deaths[pc]) {
        if (warp.physMapped.test(r)) {
            warp.physMapped.unset(r);
            ++physFree;
            freed = true;
        }
    }
}

void
RfvAllocator::onWarpExit(SimWarp &warp)
{
    const int held = static_cast<int>(warp.physMapped.count());
    if (held > 0) {
        physFree += held;
        warp.physMapped.clearAll();
        freed = true;
    }
}

bool
RfvAllocator::consumeFreedFlag()
{
    const bool f = freed;
    freed = false;
    return f;
}

int
RfvAllocator::forceProgress(SimWarp &warp)
{
    // Emergency spill: grant the stalled instruction's operands by
    // overdrafting the pool — the displaced values are modeled as
    // spilled to memory — and charge a global-memory round trip. The
    // pool may go negative until register deaths repay the overdraft.
    panicIf(prog == nullptr, "RfvAllocator::forceProgress before prepare");
    ++spills;
    mapOperands(warp, prog->code[warp.pc]);
    return spillPenalty;
}

} // namespace rm
