#include "baselines/rfv.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "analysis/cfg.hh"
#include "analysis/liveness.hh"
#include "common/errors.hh"
#include "sim/occupancy.hh"
#include "sim/snapshot.hh"

namespace rm {

void
RfvAllocator::prepare(const GpuConfig &config, const Program &program)
{
    freed = false;
    spills = 0;
    prog = &program;
    spillPenalty = config.globalLatency;
    totalPacks = config.registersPerSm / config.warpSize;
    physFree = totalPacks;
    drained = 0;

    // Compiler-side dead-register information: a register referenced at
    // pc and absent from live-out dies when pc issues.
    const Cfg cfg = Cfg::build(program);
    const Liveness liveness = Liveness::compute(program, cfg);
    deaths.assign(program.code.size(), {});
    for (std::size_t i = 0; i < program.code.size(); ++i) {
        const Instruction &inst = program.code[i];
        const int idx = static_cast<int>(i);
        auto dies = [&](RegId r) {
            return !liveness.isLiveOut(idx, r);
        };
        if (inst.hasDst() && dies(inst.dst))
            deaths[i].push_back(inst.dst);
        for (int s = 0; s < inst.numSrcs; ++s) {
            const RegId r = inst.srcs[s];
            if (dies(r) &&
                std::find(deaths[i].begin(), deaths[i].end(), r) ==
                    deaths[i].end()) {
                deaths[i].push_back(r);
            }
        }
    }

    // Provision occupancy between the static-average and peak live
    // counts: most registers are dead most of the time (paper Sec. II),
    // so more CTAs fit than the static allocation admits.
    const std::vector<int> counts = liveness.liveCounts();
    double avg = 0.0;
    int peak = 1;
    for (int c : counts) {
        avg += c;
        peak = std::max(peak, c);
    }
    avg = counts.empty() ? 1.0 : avg / static_cast<double>(counts.size());
    estDemand = std::max(
        2, static_cast<int>(std::ceil(avg + provisioning * (peak - avg))));

    const Occupancy occ =
        computeOccupancy(config, estDemand, program.info.ctaThreads,
                         program.info.sharedBytesPerCta);
    maxCtas = occ.ctasPerSm;
    fatalIf(maxCtas <= 0, "RfvAllocator: kernel '", program.info.name,
            "' does not fit under the provisioned demand");
}

void
RfvAllocator::onWarpLaunch(SimWarp &warp)
{
    warp.physMapped.clearAll();
}

int
RfvAllocator::packsNeeded(const SimWarp &warp,
                          const Instruction &inst) const
{
    int need = 0;
    auto count = [&](RegId r) {
        if (!warp.physMapped.test(r))
            ++need;
    };
    // Sources first (reading an as-yet-unmapped register allocates the
    // zero-initialized pack); skip duplicates against the destination.
    for (int s = 0; s < inst.numSrcs; ++s)
        count(inst.srcs[s]);
    if (inst.hasDst() && !warp.physMapped.test(inst.dst)) {
        bool dup = false;
        for (int s = 0; s < inst.numSrcs; ++s)
            dup |= inst.srcs[s] == inst.dst;
        if (!dup)
            ++need;
    }
    // Duplicate sources would be double counted; correct for them.
    if (inst.numSrcs >= 2 && inst.srcs[0] == inst.srcs[1] &&
        !warp.physMapped.test(inst.srcs[0])) {
        --need;
    }
    if (inst.numSrcs == 3 &&
        (inst.srcs[2] == inst.srcs[0] || inst.srcs[2] == inst.srcs[1]) &&
        !warp.physMapped.test(inst.srcs[2])) {
        --need;
    }
    return need;
}

bool
RfvAllocator::canIssue(const SimWarp &warp, const Instruction &inst) const
{
    const int need = packsNeeded(warp, inst);
    // need == 0 must always pass: an emergency overdraft can leave the
    // pool negative while fully mapped warps keep running.
    return need == 0 || need <= physFree;
}

void
RfvAllocator::mapOperands(SimWarp &warp, const Instruction &inst)
{
    auto map = [&](RegId r) {
        if (!warp.physMapped.test(r)) {
            warp.physMapped.set(r);
            --physFree;
        }
    };
    for (int s = 0; s < inst.numSrcs; ++s)
        map(inst.srcs[s]);
    if (inst.hasDst())
        map(inst.dst);
}

void
RfvAllocator::onIssued(SimWarp &warp, const Instruction &inst, int pc)
{
    mapOperands(warp, inst);
    // Release registers whose live range ends here (renaming-table
    // entry freed by the dead-register information).
    for (RegId r : deaths[pc]) {
        if (warp.physMapped.test(r)) {
            warp.physMapped.unset(r);
            ++physFree;
            freed = true;
        }
    }
}

void
RfvAllocator::onWarpExit(SimWarp &warp)
{
    const int held = static_cast<int>(warp.physMapped.count());
    if (held > 0) {
        physFree += held;
        warp.physMapped.clearAll();
        freed = true;
    }
}

bool
RfvAllocator::consumeFreedFlag()
{
    const bool f = freed;
    freed = false;
    return f;
}

int
RfvAllocator::forceProgress(SimWarp &warp)
{
    // Emergency spill: grant the stalled instruction's operands by
    // overdrafting the pool — the displaced values are modeled as
    // spilled to memory — and charge a global-memory round trip. The
    // pool may go negative until register deaths repay the overdraft.
    panicIf(prog == nullptr, "RfvAllocator::forceProgress before prepare");
    ++spills;
    mapOperands(warp, prog->code[warp.pc]);
    return spillPenalty;
}

bool
RfvAllocator::faultCorruptState()
{
    if (prog == nullptr)
        return false;
    // Inflate the free pool without a matching unmap: breaks the
    // physFree + mapped + drained == totalPacks conservation law.
    physFree += 7;
    return true;
}

void
RfvAllocator::saveState(SnapshotWriter &w) const
{
    // deaths/estDemand/maxCtas are pure functions of the program and
    // config, recomputed by prepare(); only pool state is serialized.
    w.i32(physFree);
    w.i32(drained);
    w.boolean(freed);
    w.u64(spills);
}

void
RfvAllocator::restoreState(SnapshotReader &r)
{
    physFree = r.i32();
    drained = r.i32();
    freed = r.boolean();
    spills = r.u64();
}

void
RfvAllocator::auditInvariants(const std::vector<SimWarp> &warps,
                              bool faults_active,
                              std::vector<std::string> &violations) const
{
    if (prog == nullptr)
        return;

    const auto fail = [&](const std::string &line) {
        violations.push_back("rfv: " + line);
    };

    // Conservation: free + mapped + fault-drained packs always sum to
    // the pool capacity. Emergency overdrafts keep the sum exact (the
    // pool goes negative by precisely the packs granted), so this holds
    // under faults and spills alike — never gated.
    int mapped = 0;
    for (const SimWarp &warp : warps) {
        if (warp.resident())
            mapped += static_cast<int>(warp.physMapped.count());
    }
    if (physFree + mapped + drained != totalPacks) {
        std::ostringstream os;
        os << "pool conservation: " << physFree << " free + " << mapped
           << " mapped + " << drained << " drained != capacity "
           << totalPacks;
        fail(os.str());
    }

    // Liveness: a warp parked on the pool must actually be unable to
    // issue its current instruction.
    if (!faults_active) {
        for (const SimWarp &warp : warps) {
            if (!warp.resident() || warp.state != WarpState::WaitResource)
                continue;
            if (warp.pc < 0 ||
                warp.pc >= static_cast<int>(prog->code.size()))
                continue;
            if (canIssue(warp, prog->code[warp.pc])) {
                fail("warp " + std::to_string(warp.slot) +
                     " waits on the pool but its instruction at pc " +
                     std::to_string(warp.pc) + " can issue");
            }
        }
    }
}

} // namespace rm
