#include "baselines/rfv.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "analysis/cfg.hh"
#include "analysis/liveness.hh"
#include "common/errors.hh"
#include "sim/occupancy.hh"
#include "sim/snapshot.hh"
#include "sim/warp_store.hh"

namespace rm {

void
RfvAllocator::prepare(const GpuConfig &config, const Program &program)
{
    freed = false;
    spills = 0;
    prog = &program;
    spillPenalty = config.globalLatency;
    totalPacks = config.registersPerSm / config.warpSize;
    physFree = totalPacks;
    drained = 0;

    // Compiler-side dead-register information: a register referenced at
    // pc and absent from live-out dies when pc issues.
    const Cfg cfg = Cfg::build(program);
    const Liveness liveness = Liveness::compute(program, cfg);
    deaths.assign(program.code.size(), {});
    for (std::size_t i = 0; i < program.code.size(); ++i) {
        const Instruction &inst = program.code[i];
        const int idx = static_cast<int>(i);
        auto dies = [&](RegId r) {
            return !liveness.isLiveOut(idx, r);
        };
        if (inst.hasDst() && dies(inst.dst))
            deaths[i].push_back(inst.dst);
        for (int s = 0; s < inst.numSrcs; ++s) {
            const RegId r = inst.srcs[s];
            if (dies(r) &&
                std::find(deaths[i].begin(), deaths[i].end(), r) ==
                    deaths[i].end()) {
                deaths[i].push_back(r);
            }
        }
    }

    // Word-level fast-path tables (see rfv.hh): valid only when every
    // register id fits bit position 0..63.
    opMaskByPc.clear();
    opCountByPc.clear();
    deathMaskByPc.clear();
    bool fits = true;
    for (std::size_t i = 0; i < program.code.size() && fits; ++i) {
        const Instruction &inst = program.code[i];
        std::uint64_t ops = 0;
        const auto add = [&fits](std::uint64_t &mask, RegId r) {
            if (r < 0 || r >= 64) {
                fits = false;
                return;
            }
            mask |= std::uint64_t{1} << r;
        };
        if (inst.hasDst())
            add(ops, inst.dst);
        for (int s = 0; s < inst.numSrcs; ++s)
            add(ops, inst.srcs[s]);
        std::uint64_t dead = 0;
        for (RegId r : deaths[i])
            add(dead, r);
        opMaskByPc.push_back(ops);
        opCountByPc.push_back(static_cast<std::uint8_t>(
            __builtin_popcountll(ops)));
        deathMaskByPc.push_back(dead);
    }
    if (!fits) {
        opMaskByPc.clear();
        opCountByPc.clear();
        deathMaskByPc.clear();
    }

    // Provision occupancy between the static-average and peak live
    // counts: most registers are dead most of the time (paper Sec. II),
    // so more CTAs fit than the static allocation admits.
    const std::vector<int> counts = liveness.liveCounts();
    double avg = 0.0;
    int peak = 1;
    for (int c : counts) {
        avg += c;
        peak = std::max(peak, c);
    }
    avg = counts.empty() ? 1.0 : avg / static_cast<double>(counts.size());
    estDemand = std::max(
        2, static_cast<int>(std::ceil(avg + provisioning * (peak - avg))));

    const Occupancy occ =
        computeOccupancy(config, estDemand, program.info.ctaThreads,
                         program.info.sharedBytesPerCta);
    maxCtas = occ.ctasPerSm;
    fatalIf(maxCtas <= 0, "RfvAllocator: kernel '", program.info.name,
            "' does not fit under the provisioned demand");
}

void
RfvAllocator::onWarpLaunch(SimWarp &warp)
{
    warp.physMapped.clearAll();
}

int
RfvAllocator::packsNeeded(const SimWarp &warp,
                          const Instruction &inst) const
{
    int need = 0;
    auto count = [&](RegId r) {
        if (!warp.physMapped.test(r))
            ++need;
    };
    // Sources first (reading an as-yet-unmapped register allocates the
    // zero-initialized pack); skip duplicates against the destination.
    for (int s = 0; s < inst.numSrcs; ++s)
        count(inst.srcs[s]);
    if (inst.hasDst() && !warp.physMapped.test(inst.dst)) {
        bool dup = false;
        for (int s = 0; s < inst.numSrcs; ++s)
            dup |= inst.srcs[s] == inst.dst;
        if (!dup)
            ++need;
    }
    // Duplicate sources would be double counted; correct for them.
    if (inst.numSrcs >= 2 && inst.srcs[0] == inst.srcs[1] &&
        !warp.physMapped.test(inst.srcs[0])) {
        --need;
    }
    if (inst.numSrcs == 3 &&
        (inst.srcs[2] == inst.srcs[0] || inst.srcs[2] == inst.srcs[1]) &&
        !warp.physMapped.test(inst.srcs[2])) {
        --need;
    }
    return need;
}

bool
RfvAllocator::canIssue(const SimWarp &warp, const Instruction &inst) const
{
    // Called once per Ready candidate per scheduler cycle. The engine
    // always passes &prog->code[pc], so the pc — and with it the
    // precomputed operand mask — is recoverable from the instruction's
    // address; out-of-program instructions (unit tests) miss the bounds
    // check and take the general paths below.
    if (!opMaskByPc.empty()) {
        const std::ptrdiff_t pc = &inst - prog->code.data();
        if (pc >= 0 &&
            pc < static_cast<std::ptrdiff_t>(opMaskByPc.size())) {
            const auto upc = static_cast<std::size_t>(pc);
            // need never exceeds the distinct operand count, so a pool
            // with that much headroom admits without loading the
            // warp's (cold) mapping word.
            if (physFree >= opCountByPc[upc])
                return true;
            const int need = __builtin_popcountll(
                opMaskByPc[upc] & ~warp.physMapped.word(0));
            return need == 0 || need <= physFree;
        }
    }
    // "Distinct unmapped operands" as one popcount — identical to
    // packsNeeded()'s dedup arithmetic.
    if (warp.physMapped.size() <= 64) {
        std::uint64_t operands = 0;
        if (inst.hasDst())
            operands |= std::uint64_t{1} << inst.dst;
        for (int s = 0; s < inst.numSrcs; ++s)
            operands |= std::uint64_t{1} << inst.srcs[s];
        const int need = __builtin_popcountll(
            operands & ~warp.physMapped.word(0));
        return need == 0 || need <= physFree;
    }
    const int need = packsNeeded(warp, inst);
    // need == 0 must always pass: an emergency overdraft can leave the
    // pool negative while fully mapped warps keep running.
    return need == 0 || need <= physFree;
}

void
RfvAllocator::mapOperands(SimWarp &warp, const Instruction &inst)
{
    auto map = [&](RegId r) {
        if (!warp.physMapped.test(r)) {
            warp.physMapped.set(r);
            --physFree;
        }
    };
    for (int s = 0; s < inst.numSrcs; ++s)
        map(inst.srcs[s]);
    if (inst.hasDst())
        map(inst.dst);
}

void
RfvAllocator::onIssued(SimWarp &warp, const Instruction &inst, int pc)
{
    // Word-level form of the walk below: map every unmapped operand,
    // then release the pc's death set (only its mapped members — the
    // same regs the per-bit test() guard would release).
    if (!opMaskByPc.empty()) {
        const auto upc = static_cast<std::size_t>(pc);
        const std::uint64_t mapped = warp.physMapped.word(0);
        const std::uint64_t added = opMaskByPc[upc] & ~mapped;
        if (added != 0) {
            warp.physMapped.setWordBits(0, added);
            physFree -= __builtin_popcountll(added);
        }
        const std::uint64_t dead = deathMaskByPc[upc] & (mapped | added);
        if (dead != 0) {
            warp.physMapped.clearWordBits(0, dead);
            physFree += __builtin_popcountll(dead);
            freed = true;
        }
        return;
    }
    mapOperands(warp, inst);
    // Release registers whose live range ends here (renaming-table
    // entry freed by the dead-register information).
    for (RegId r : deaths[pc]) {
        if (warp.physMapped.test(r)) {
            warp.physMapped.unset(r);
            ++physFree;
            freed = true;
        }
    }
}

void
RfvAllocator::onWarpExit(SimWarp &warp)
{
    const int held = static_cast<int>(warp.physMapped.count());
    if (held > 0) {
        physFree += held;
        warp.physMapped.clearAll();
        freed = true;
    }
}

bool
RfvAllocator::consumeFreedFlag()
{
    const bool f = freed;
    freed = false;
    return f;
}

int
RfvAllocator::forceProgress(SimWarp &warp, int pc)
{
    // Emergency spill: grant the stalled instruction's operands by
    // overdrafting the pool — the displaced values are modeled as
    // spilled to memory — and charge a global-memory round trip. The
    // pool may go negative until register deaths repay the overdraft.
    panicIf(prog == nullptr, "RfvAllocator::forceProgress before prepare");
    ++spills;
    mapOperands(warp, prog->code[pc]);
    return spillPenalty;
}

bool
RfvAllocator::faultCorruptState()
{
    if (prog == nullptr)
        return false;
    // Inflate the free pool without a matching unmap: breaks the
    // physFree + mapped + drained == totalPacks conservation law.
    physFree += 7;
    return true;
}

void
RfvAllocator::saveState(SnapshotWriter &w) const
{
    // deaths/estDemand/maxCtas are pure functions of the program and
    // config, recomputed by prepare(); only pool state is serialized.
    w.i32(physFree);
    w.i32(drained);
    w.boolean(freed);
    w.u64(spills);
}

void
RfvAllocator::restoreState(SnapshotReader &r)
{
    physFree = r.i32();
    drained = r.i32();
    freed = r.boolean();
    spills = r.u64();
}

void
RfvAllocator::auditInvariants(const WarpStore &warps,
                              bool faults_active,
                              std::vector<std::string> &violations) const
{
    if (prog == nullptr)
        return;

    const auto fail = [&](const std::string &line) {
        violations.push_back("rfv: " + line);
    };

    // Conservation: free + mapped + fault-drained packs always sum to
    // the pool capacity. Emergency overdrafts keep the sum exact (the
    // pool goes negative by precisely the packs granted), so this holds
    // under faults and spills alike — never gated.
    int mapped = 0;
    for (int slot = 0; slot < warps.numSlots(); ++slot) {
        if (warps.resident(slot))
            mapped +=
                static_cast<int>(warps.warp(slot).physMapped.count());
    }
    if (physFree + mapped + drained != totalPacks) {
        std::ostringstream os;
        os << "pool conservation: " << physFree << " free + " << mapped
           << " mapped + " << drained << " drained != capacity "
           << totalPacks;
        fail(os.str());
    }

    // Liveness: a warp parked on the pool must actually be unable to
    // issue its current instruction.
    if (!faults_active) {
        for (int slot = 0; slot < warps.numSlots(); ++slot) {
            if (!warps.resident(slot) ||
                warps.state(slot) != WarpState::WaitResource)
                continue;
            const int pc = warps.pc(slot);
            if (pc < 0 || pc >= static_cast<int>(prog->code.size()))
                continue;
            if (canIssue(warps.warp(slot), prog->code[pc])) {
                fail("warp " + std::to_string(slot) +
                     " waits on the pool but its instruction at pc " +
                     std::to_string(pc) + " can issue");
            }
        }
    }
}

} // namespace rm
