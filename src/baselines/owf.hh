#ifndef RM_BASELINES_OWF_HH
#define RM_BASELINES_OWF_HH

/**
 * @file
 * Resource Sharing with Owner-Warp-First scheduling (Jatala et al.,
 * HPDC 2016) — the paper's first comparison baseline. Pairs of warps
 * share the registers whose architected index is at or above a
 * threshold; the pair's owner warp holds them for its whole lifetime
 * (one-time acquire, no in-kernel release — the shortcoming RegMutex
 * fixes) while the partner stalls on any shared-register access until
 * the owner finishes. The scheduler prefers owner warps (OWF) so the
 * shared registers free up as early as possible.
 *
 * Pairing crosses the warp-slot halves (slot s pairs with s + Nw/2),
 * mirroring Jatala's pairing of fully-allocated warps with the extra
 * warps their scheme admits: partners then never belong to the same
 * CTA, which removes the common lock-vs-barrier deadlock. Rare
 * cross-CTA lock/barrier cycles across three or more CTA generations
 * are broken by the simulator's wedge detector through
 * forceProgress(), which emergency-grants the shared set (modeled as
 * a spill) — counted in the emergency statistic.
 *
 * For an apples-to-apples comparison the threshold equals the RegMutex
 * |Bs| of the same (compacted) kernel, so both techniques share the
 * same registers; RegAcquire/RegRelease directives must be stripped
 * from the input (Jatala's scheme has none).
 */

#include <vector>

#include "sim/allocator.hh"

namespace rm {

/** Pairwise one-shot register-sharing policy. */
class OwfAllocator : public RegisterAllocator
{
  public:
    std::string name() const override { return "owf"; }

    void prepare(const GpuConfig &config, const Program &program) override;
    int maxCtasByRegisters() const override { return maxCtas; }

    bool canIssue(const SimWarp &warp,
                  const Instruction &inst) const override;
    // Both the pair lock and owner-warp-first only act once the policy
    // is enabled (a kernel that needs no shared set never gates).
    bool gatesIssue() const override { return enabled; }
    bool biasesPriority() const override { return enabled; }
    void onIssued(SimWarp &warp, const Instruction &inst, int pc) override;
    void onWarpExit(SimWarp &warp) override;
    bool consumeFreedFlag() override;
    int schedPriority(const SimWarp &warp) const override;
    int forceProgress(SimWarp &warp, int pc) override;
    std::uint64_t lockCount() const override { return locksTaken; }
    std::uint64_t emergencyCount() const override { return emergencies; }
    bool faultCorruptState() override;
    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;
    void auditInvariants(const WarpStore &warps,
                         bool faults_active,
                         std::vector<std::string> &violations) const override;

    int threshold() const { return thresh; }
    /** Pair index of a warp slot (slot and slot + Nw/2 share it). */
    int pairOf(int slot) const { return slot % halfWarps; }
    /** Current lock holder of a pair, -1 when free (for tests). */
    int lockHolder(int pair) const { return holder[pair]; }

  private:
    bool enabled = false;
    int thresh = 0;    ///< registers at or above share within the pair
    int maxCtas = 0;
    int halfWarps = 0;
    int spillPenalty = 0;
    /** Pair lock holder slot, -1 when free. */
    std::vector<int> holder;
    bool freed = false;
    std::uint64_t locksTaken = 0;
    std::uint64_t emergencies = 0;

    bool referencesShared(const Instruction &inst) const;
};

} // namespace rm

#endif // RM_BASELINES_OWF_HH
