#ifndef RM_BASELINES_BASELINE_HH
#define RM_BASELINES_BASELINE_HH

/**
 * @file
 * The baseline allocation policy existing GPUs use (paper Sec. II):
 * physical registers are statically and exclusively reserved for each
 * warp at CTA launch — the rounded per-thread register count times the
 * CTA size — and released only when the CTA retires. Occupancy is
 * whatever that footprint allows; there is no sharing.
 */

#include "sim/allocator.hh"
#include "sim/register_map.hh"

namespace rm {

/** Static, exclusive allocation (the Y = Coeff * Widx + X scheme). */
class BaselineAllocator : public RegisterAllocator
{
  public:
    std::string name() const override { return "baseline"; }

    void prepare(const GpuConfig &config, const Program &program) override;
    int maxCtasByRegisters() const override { return maxCtas; }

    // Static exclusive allocation never gates issue or biases the
    // scheduler: the hot loop may skip both virtual calls.
    bool gatesIssue() const override { return false; }
    bool biasesPriority() const override { return false; }

    /** Operand-collector mapping (paper Fig. 6a). */
    RegisterMapper makeMapper() const;

    int coefficient() const { return coeff; }

  private:
    int maxCtas = 0;
    int coeff = 0;
    int totalPacks = 0;
};

} // namespace rm

#endif // RM_BASELINES_BASELINE_HH
