#ifndef RM_BASELINES_RFV_HH
#define RM_BASELINES_RFV_HH

/**
 * @file
 * Register File Virtualization (Jeon et al., MICRO 2015) — the paper's
 * second comparison baseline. A renaming table maps architected to
 * physical registers on demand: a physical register is allocated at a
 * register's (re)definition and released at its last use, using
 * compiler-provided dead-register information (here: the liveness
 * dataflow). Occupancy is provisioned above the static peak since most
 * registers are dead most of the time; if the physical pool runs dry
 * the issuing warp stalls, and a full wedge is broken by an emergency
 * spill (GPU-Shrink models register spilling similarly).
 */

#include <vector>

#include "sim/allocator.hh"

namespace rm {

/** Renaming-table allocation policy. */
class RfvAllocator : public RegisterAllocator
{
  public:
    /**
     * @param provisioning occupancy provisioning estimate in
     *        [0, 1]: 0 provisions by the static average live count,
     *        1 by the peak; default midway.
     */
    explicit RfvAllocator(double provisioning = 0.25)
        : provisioning(provisioning)
    {}

    std::string name() const override { return "rfv"; }

    void prepare(const GpuConfig &config, const Program &program) override;
    int maxCtasByRegisters() const override { return maxCtas; }

    void onWarpLaunch(SimWarp &warp) override;
    bool canIssue(const SimWarp &warp,
                  const Instruction &inst) const override;
    // canIssue gates on the physical pool (keep the default hint), but
    // RFV never biases scheduler priority.
    bool biasesPriority() const override { return false; }
    void onIssued(SimWarp &warp, const Instruction &inst, int pc) override;
    void onWarpExit(SimWarp &warp) override;
    bool consumeFreedFlag() override;
    int forceProgress(SimWarp &warp, int pc) override;
    std::uint64_t emergencyCount() const override { return spills; }

    /**
     * Fault injection: permanently drain @p amount physical packs from
     * the pool. The pool may go negative (the overdraft rules already
     * tolerate that), starving issue and driving the emergency-spill
     * breaker.
     */
    int faultShrinkCapacity(int amount) override
    {
        if (amount <= 0)
            return 0;
        physFree -= amount;
        drained += amount;
        return amount;
    }

    bool faultCorruptState() override;
    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;
    void auditInvariants(const WarpStore &warps,
                         bool faults_active,
                         std::vector<std::string> &violations) const override;

    /** Free physical register packs right now (for tests). */
    int freePacks() const { return physFree; }
    int estimatedDemand() const { return estDemand; }

  private:
    double provisioning;
    const Program *prog = nullptr;
    int maxCtas = 0;
    int estDemand = 0;
    int physFree = 0;
    int totalPacks = 0;
    /** Packs permanently drained by fault injection (conservation). */
    int drained = 0;
    int spillPenalty = 0;
    bool freed = false;
    std::uint64_t spills = 0;
    /** Registers whose last use is at this pc (dead after issue). */
    std::vector<std::vector<RegId>> deaths;
    /**
     * Word-level issue fast path, populated by prepare() when every
     * register id of the program fits one 64-bit word (always true for
     * the paper's kernels): per-pc distinct-operand mask and count,
     * and the death set as a mask. canIssue() admits without touching
     * the warp's mapping when the pool already covers the distinct
     * operand count (need can never exceed it), and onIssued() maps
     * and releases with two word ops instead of per-bit walks. All
     * three stay empty when any id is >= 64, falling back to the
     * general paths.
     */
    std::vector<std::uint64_t> opMaskByPc;
    std::vector<std::uint8_t> opCountByPc;
    std::vector<std::uint64_t> deathMaskByPc;

    int packsNeeded(const SimWarp &warp, const Instruction &inst) const;
    void mapOperands(SimWarp &warp, const Instruction &inst);
};

} // namespace rm

#endif // RM_BASELINES_RFV_HH
