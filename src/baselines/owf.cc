#include "baselines/owf.hh"

#include "common/errors.hh"
#include "sim/occupancy.hh"
#include "sim/snapshot.hh"
#include "sim/warp_store.hh"

namespace rm {

void
OwfAllocator::prepare(const GpuConfig &config, const Program &program)
{
    enabled = program.regmutex.enabled();
    freed = false;
    locksTaken = 0;
    emergencies = 0;
    halfWarps = config.maxWarpsPerSm / 2;
    holder.assign(halfWarps, -1);
    spillPenalty = config.globalLatency;

    if (!enabled) {
        // No shared layout: behave like the baseline.
        const Occupancy occ = computeOccupancy(
            config, roundRegs(config, program.info.numRegs),
            program.info.ctaThreads, program.info.sharedBytesPerCta);
        maxCtas = occ.ctasPerSm;
        thresh = program.info.numRegs;
        return;
    }

    for (const auto &inst : program.code) {
        fatalIf(inst.op == Opcode::RegAcquire ||
                inst.op == Opcode::RegRelease,
                "OwfAllocator: strip RegMutex directives before "
                "running OWF");
    }

    thresh = program.regmutex.baseRegs;
    const int total = program.info.numRegs;  // |Bs| + |Es| (padded)

    // Cross-half pairing keeps partners in different CTAs only while
    // a CTA cannot span both slot halves.
    fatalIf(config.warpsPerCta(program.info.ctaThreads) > halfWarps,
            "OwfAllocator: CTAs of more than ", halfWarps,
            " warps would pair a CTA with itself");

    // Each pair of warps reserves 2*T + (total - T) registers per
    // thread-pair: private lower sets plus one shared upper set.
    const int warps_per_cta = config.warpsPerCta(program.info.ctaThreads);
    const Occupancy other = computeOccupancy(
        config, 0, program.info.ctaThreads,
        program.info.sharedBytesPerCta);
    int ctas = other.ctasPerSm;
    while (ctas > 0) {
        const int warps = ctas * warps_per_cta;
        const int used_pairs = (warps + 1) / 2;
        const int regs =
            (warps * thresh + used_pairs * (total - thresh)) *
            config.warpSize;
        if (regs <= config.registersPerSm)
            break;
        --ctas;
    }
    fatalIf(ctas <= 0, "OwfAllocator: kernel '", program.info.name,
            "' cannot fit one CTA");

    // Sharing exists to admit extra thread blocks (Jatala Sec. 3): if
    // the pair footprint does not fit meaningfully more warps than the
    // baseline's full allocation (>= 25% here), no pairs are formed
    // and warps run with exclusive registers.
    const Occupancy baseline = computeOccupancy(
        config, roundRegs(config, total), program.info.ctaThreads,
        program.info.sharedBytesPerCta);
    if (4 * ctas < 5 * baseline.ctasPerSm) {
        enabled = false;
        maxCtas = baseline.ctasPerSm;
        thresh = total;
        return;
    }
    maxCtas = ctas;
}

bool
OwfAllocator::referencesShared(const Instruction &inst) const
{
    if (inst.hasDst() && inst.dst >= thresh)
        return true;
    for (int s = 0; s < inst.numSrcs; ++s) {
        if (inst.srcs[s] >= thresh)
            return true;
    }
    return false;
}

bool
OwfAllocator::canIssue(const SimWarp &warp, const Instruction &inst) const
{
    if (!enabled || warp.ownsLock || !referencesShared(inst))
        return true;
    const int owner = holder[pairOf(warp.slot)];
    return owner < 0 || owner == warp.slot;
}

void
OwfAllocator::onIssued(SimWarp &warp, const Instruction &inst, int pc)
{
    (void)pc;
    if (!enabled || warp.ownsLock || !referencesShared(inst))
        return;
    // First shared-register access acquires the pair lock for the
    // warp's whole lifetime (one-time acquire, no in-kernel release).
    const int pair = pairOf(warp.slot);
    panicIf(holder[pair] >= 0 && holder[pair] != warp.slot,
            "OwfAllocator: issue slipped past a held pair lock");
    holder[pair] = warp.slot;
    warp.ownsLock = true;
    ++locksTaken;
}

void
OwfAllocator::onWarpExit(SimWarp &warp)
{
    if (!enabled || !warp.ownsLock)
        return;
    const int pair = pairOf(warp.slot);
    if (holder[pair] == warp.slot)
        holder[pair] = -1;
    warp.ownsLock = false;
    freed = true;  // the partner may proceed
}

bool
OwfAllocator::consumeFreedFlag()
{
    const bool f = freed;
    freed = false;
    return f;
}

int
OwfAllocator::schedPriority(const SimWarp &warp) const
{
    // Owner-Warp-First: lock owners run first so they finish and free
    // the shared registers sooner.
    return (enabled && warp.ownsLock) ? 1 : 0;
}

int
OwfAllocator::forceProgress(SimWarp &warp, int pc)
{
    (void)pc;
    // Wedge breaker for cross-CTA lock/barrier cycles: co-grant the
    // shared set, modeling a spill of the holder's shared registers.
    ++emergencies;
    warp.ownsLock = true;
    return spillPenalty;
}

bool
OwfAllocator::faultCorruptState()
{
    if (!enabled || holder.empty())
        return false;
    holder[0] = holder[0] < 0 ? 0 : -1;
    return true;
}

void
OwfAllocator::saveState(SnapshotWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(holder.size()));
    for (const int slot : holder)
        w.i32(slot);
    w.boolean(freed);
    w.u64(locksTaken);
    w.u64(emergencies);
}

void
OwfAllocator::restoreState(SnapshotReader &r)
{
    const std::uint32_t n = r.u32();
    holder.assign(n, -1);
    for (std::uint32_t i = 0; i < n; ++i)
        holder[i] = r.i32();
    freed = r.boolean();
    locksTaken = r.u64();
    emergencies = r.u64();
}

void
OwfAllocator::auditInvariants(const WarpStore &warps,
                              bool faults_active,
                              std::vector<std::string> &violations) const
{
    if (!enabled)
        return;

    const auto fail = [&](const std::string &line) {
        violations.push_back("owf: " + line);
    };

    // Every recorded holder must be a resident lock-owning warp of the
    // right pair (never fault-gated: corruption must surface here).
    for (int pair = 0; pair < static_cast<int>(holder.size()); ++pair) {
        const int slot = holder[pair];
        if (slot < 0)
            continue;
        if (slot >= warps.numSlots() || !warps.resident(slot)) {
            fail("pair " + std::to_string(pair) + " holder slot " +
                 std::to_string(slot) + " is not resident");
            continue;
        }
        if (pairOf(slot) != pair) {
            fail("pair " + std::to_string(pair) + " holder slot " +
                 std::to_string(slot) + " belongs to pair " +
                 std::to_string(pairOf(slot)));
        }
        if (!warps.warp(slot).ownsLock) {
            fail("pair " + std::to_string(pair) + " holder warp " +
                 std::to_string(slot) + " does not own the lock");
        }
    }

    // The reverse direction only holds while no emergency co-grant has
    // handed a lock out without recording a holder.
    if (emergencies == 0) {
        for (int slot = 0; slot < warps.numSlots(); ++slot) {
            if (!warps.resident(slot) || !warps.warp(slot).ownsLock)
                continue;
            const int pair = pairOf(slot);
            if (pair >= 0 && pair < static_cast<int>(holder.size()) &&
                holder[pair] != slot) {
                fail("warp " + std::to_string(slot) +
                     " owns the pair-" + std::to_string(pair) +
                     " lock but the holder entry is " +
                     std::to_string(holder[pair]));
            }
        }
    }

    // Liveness: a warp parked on the pair lock while nobody holds it is
    // a missed wake-up.
    if (!faults_active) {
        for (int slot = 0; slot < warps.numSlots(); ++slot) {
            if (!warps.resident(slot) ||
                warps.state(slot) != WarpState::WaitResource)
                continue;
            const int pair = pairOf(slot);
            if (pair >= 0 && pair < static_cast<int>(holder.size()) &&
                holder[pair] < 0) {
                fail("warp " + std::to_string(slot) +
                     " waits on pair " + std::to_string(pair) +
                     " which nobody holds");
            }
        }
    }
}

} // namespace rm
