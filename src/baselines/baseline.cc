#include "baselines/baseline.hh"

#include "sim/occupancy.hh"

namespace rm {

void
BaselineAllocator::prepare(const GpuConfig &config, const Program &program)
{
    coeff = roundRegs(config, program.info.numRegs);
    totalPacks = config.registersPerSm / config.warpSize;
    const Occupancy occ =
        computeOccupancy(config, coeff, program.info.ctaThreads,
                         program.info.sharedBytesPerCta);
    maxCtas = occ.ctasPerSm;
}

RegisterMapper
BaselineAllocator::makeMapper() const
{
    return RegisterMapper::baseline(totalPacks, coeff);
}

} // namespace rm
