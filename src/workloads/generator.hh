#ifndef RM_WORKLOADS_GENERATOR_HH
#define RM_WORKLOADS_GENERATOR_HH

/**
 * @file
 * Parameterized synthetic kernel generator. Each workload is a
 * phase-structured kernel: long-lived accumulators plus per-phase
 * loops whose bodies load from global memory, ramp register pressure
 * to a target peak with short-lived temporaries, and fold the results
 * back into the accumulators — the "register consumption increases
 * within inner loops" shape behind the paper's Fig. 1. Optional
 * CTA barriers (with a controlled live count) and data-dependent
 * diamonds exercise the deadlock rule and conservative liveness.
 *
 * Register indices are assigned by an internal free-list allocator
 * whose capacity is exactly the target register count, so the
 * generated kernel's architected register demand is precise by
 * construction (tests assert the liveness peak equals the target).
 * With `scramble` set the free list hands out indices in a seeded
 * random order, simulating an unfavourable upstream allocation that
 * the RegMutex compaction pass must undo.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace rm {

/** One phase of a synthetic kernel. */
struct PhaseSpec
{
    /** Loop iterations (1 = straight-line phase). */
    int trips = 1;
    /** Peak live registers during the phase's burst (absolute). */
    int peak = 16;
    /** Global loads per (inner) iteration feeding the accumulators. */
    int loads = 2;
    /**
     * Inner memory-subloop iterations per outer trip. When positive,
     * each outer trip first runs a low-pressure, latency-bound memory
     * subloop (`loads` loads per inner iteration folded immediately)
     * and then a compute-only register burst — the paper's motivating
     * shape where the full register demand is live only briefly. When
     * zero, the loads feed the burst directly (compute-bound shape).
     */
    int memTrips = 0;
    /** Extra ALU mixing operations per temporary. */
    int aluPerTemp = 1;
    /** Use SFU ops in the burst (compute-bound kernels). */
    bool useSfu = false;
    /** Insert a data-dependent diamond in the body. */
    bool divergent = false;
    /** CTA-wide barrier after the phase (with shared-memory exchange
     *  when the kernel declares shared memory). */
    bool barrierAfter = false;
    /** Live-register count to hold at that barrier (0 = natural). */
    int barrierLive = 0;
};

/** Full kernel specification. */
struct KernelSpec
{
    std::string name = "synthetic";
    /** Target architected registers per thread (Table I raw count). */
    int regs = 16;
    int ctaThreads = 256;
    /** CTAs per SM share; the grid is this times the SM count. */
    int gridCtasPerSm = 8;
    int sharedBytes = 0;
    /** Long-lived accumulator count (live for the whole kernel). */
    int persistent = 4;
    std::vector<PhaseSpec> phases;
    /** Randomize register-index assignment (see file comment). */
    bool scramble = true;
    std::uint64_t seed = 1;
};

/**
 * Build the kernel. Throws FatalError when the specification is
 * internally inconsistent (e.g. a phase peak below the persistent
 * baseline or above the register budget).
 */
Program buildKernel(const KernelSpec &spec, int num_sms = 15);

} // namespace rm

#endif // RM_WORKLOADS_GENERATOR_HH
