#include "workloads/generator.hh"

#include <set>

#include "common/errors.hh"
#include "common/rng.hh"
#include "isa/builder.hh"

namespace rm {

namespace {

/**
 * Free-list register allocator with exact capacity. With scrambling
 * the free index handed out is seeded-random, simulating an
 * unfavourable upstream register assignment.
 */
class RegPool
{
  public:
    RegPool(int capacity, bool scramble, std::uint64_t seed)
        : scramble(scramble), rng(seed)
    {
        for (int r = 0; r < capacity; ++r)
            freeSet.insert(static_cast<RegId>(r));
    }

    RegId
    alloc()
    {
        fatalIf(freeSet.empty(),
                "workload generator ran out of registers — "
                "phase peaks exceed the register budget");
        auto it = freeSet.begin();
        if (scramble && freeSet.size() > 1) {
            const auto skip =
                rng.uniformInt(0, static_cast<std::int64_t>(
                                      freeSet.size()) - 1);
            std::advance(it, skip);
        }
        const RegId r = *it;
        freeSet.erase(it);
        return r;
    }

    void
    release(RegId r)
    {
        const bool inserted = freeSet.insert(r).second;
        panicIf(!inserted, "double free of register r", r);
    }

  private:
    bool scramble;
    Rng rng;
    std::set<RegId> freeSet;
};

/** Emission context shared by the phase emitters. */
struct Gen
{
    ProgramBuilder &b;
    RegPool &pool;
    Rng rng;
    RegId base;               ///< per-warp global base address
    std::vector<RegId> accs;  ///< persistent accumulators

    RegId
    anyAcc(int i) const
    {
        return accs[static_cast<std::size_t>(i) % accs.size()];
    }
};

/** Background live count: base address + accumulators. */
int
backgroundLive(const KernelSpec &spec)
{
    return 1 + spec.persistent;
}

void
emitPrologue(Gen &g, const KernelSpec &spec)
{
    const RegId cta = g.pool.alloc();
    const RegId warp = g.pool.alloc();
    const RegId tmp = g.pool.alloc();
    g.b.readSreg(cta, SpecialReg::CtaId);
    g.b.readSreg(warp, SpecialReg::WarpInCta);
    g.b.readSreg(tmp, SpecialReg::WarpsPerCta);
    g.base = g.pool.alloc();
    g.b.imad(g.base, cta, tmp, warp);   // base = cta * wpc + warp
    g.b.movImm(tmp, 1 << 12);
    g.b.imul(g.base, g.base, tmp);      // spread warps across memory
    g.pool.release(cta);
    g.pool.release(warp);
    g.pool.release(tmp);

    for (int i = 0; i < spec.persistent; ++i) {
        const RegId acc = g.pool.alloc();
        g.b.movImm(acc, 3 * i + 1);
        g.accs.push_back(acc);
    }
}

void
emitPhase(Gen &g, const KernelSpec &spec, const PhaseSpec &phase)
{
    const int bg = backgroundLive(spec);
    // Live at the burst peak: background + outer counter + temporaries
    // (+ loaded values when they feed the burst directly).
    const bool subloop = phase.memTrips > 0;
    const int temps =
        phase.peak - (bg + 1) - (subloop ? 0 : phase.loads);
    fatalIf(temps < 1, "phase peak ", phase.peak,
            " too small for background ", bg, " + counter + ",
            phase.loads, " loads in kernel '", spec.name, "'");
    fatalIf(phase.peak > spec.regs, "phase peak ", phase.peak,
            " exceeds the register budget ", spec.regs, " of kernel '",
            spec.name, "'");

    const RegId counter = g.pool.alloc();
    g.b.movImm(counter, phase.trips);
    const auto head = g.b.newLabel();
    g.b.bind(head);

    std::vector<RegId> loaded;
    if (subloop) {
        // Latency-bound memory subloop: gather and fold immediately,
        // keeping pressure low (released state under RegMutex).
        const RegId mctr = g.pool.alloc();
        g.b.movImm(mctr, phase.memTrips);
        const auto mem_head = g.b.newLabel();
        g.b.bind(mem_head);
        std::vector<RegId> gathered;
        for (int j = 0; j < phase.loads; ++j) {
            const RegId addr = g.pool.alloc();
            g.b.movImm(addr, 64 + 8 * j);
            g.b.imad(addr, mctr, addr, g.base);
            g.b.imad(addr, counter, addr, addr);
            const RegId lv = g.pool.alloc();
            g.b.ldGlobal(lv, addr, j);
            g.pool.release(addr);
            gathered.push_back(lv);
        }
        for (int j = phase.loads - 1; j >= 0; --j) {
            g.b.bxor(g.anyAcc(j), g.anyAcc(j), gathered[j]);
            g.pool.release(gathered[j]);
        }
        const RegId one = g.pool.alloc();
        g.b.movImm(one, 1);
        g.b.isub(mctr, mctr, one);
        g.pool.release(one);
        g.b.braNz(mctr, mem_head);
        g.pool.release(mctr);
    } else {
        // Loads feed the burst directly (compute-bound shape).
        for (int j = 0; j < phase.loads; ++j) {
            const RegId addr = g.pool.alloc();
            g.b.movImm(addr, 64 + 8 * j);
            g.b.imad(addr, counter, addr, g.base);
            const RegId lv = g.pool.alloc();
            g.b.ldGlobal(lv, addr, j);
            g.pool.release(addr);
            loaded.push_back(lv);
        }
    }

    // Pressure ramp: define all temporaries before consuming any.
    // Chaining every 4th temp keeps ~4 independent dependence chains
    // per warp, so compute phases have realistic ILP.
    std::vector<RegId> burst;
    for (int i = 0; i < temps; ++i) {
        const RegId t = g.pool.alloc();
        const RegId prev =
            burst.size() < 4
                ? (loaded.empty() ? g.anyAcc(i) : loaded[0])
                : burst[burst.size() - 4];
        const RegId other =
            loaded.empty()
                ? g.anyAcc(i + 1)
                : loaded[static_cast<std::size_t>(i) % loaded.size()];
        if (phase.useSfu && i % 5 == 4) {
            g.b.frcp(t, prev);
        } else {
            g.b.ffma(t, prev, other, g.anyAcc(i));
        }
        for (int a = 0; a < phase.aluPerTemp; ++a)
            g.b.iadd(t, t, g.anyAcc(i + a));
        burst.push_back(t);
    }

    // Fold the temporaries back (reverse order: pressure decays).
    for (int i = temps - 1; i >= 0; --i) {
        g.b.iadd(g.anyAcc(i), g.anyAcc(i), burst[i]);
        g.pool.release(burst[i]);
    }
    for (int j = static_cast<int>(loaded.size()) - 1; j >= 0; --j) {
        g.b.bxor(g.anyAcc(j), g.anyAcc(j), loaded[j]);
        g.pool.release(loaded[j]);
    }

    // Optional data-dependent diamond.
    if (phase.divergent) {
        const RegId cond = g.pool.alloc();
        g.b.setp(cond, CmpOp::Lt, g.anyAcc(0), g.anyAcc(1));
        const auto skip = g.b.newLabel();
        g.b.braZ(cond, skip);
        g.pool.release(cond);
        g.b.imax(g.anyAcc(0), g.anyAcc(0), g.anyAcc(2));
        g.b.bxor(g.anyAcc(1), g.anyAcc(1), g.anyAcc(0));
        g.b.bind(skip);
    }

    // Decrement and loop.
    const RegId one = g.pool.alloc();
    g.b.movImm(one, 1);
    g.b.isub(counter, counter, one);
    g.pool.release(one);
    g.b.braNz(counter, head);
    g.pool.release(counter);

    // Optional CTA barrier with a controlled live count.
    if (phase.barrierAfter) {
        const bool shared = spec.sharedBytes > 0;
        RegId saddr = kNoReg;
        if (shared) {
            saddr = g.pool.alloc();
            g.b.readSreg(saddr, SpecialReg::WarpInCta);
            g.b.stShared(saddr, g.accs[0]);
        }
        std::vector<RegId> pads;
        if (phase.barrierLive > 0) {
            const int pad =
                phase.barrierLive - bg - (shared ? 1 : 0);
            fatalIf(pad < 0, "barrierLive ", phase.barrierLive,
                    " below the background live count in kernel '",
                    spec.name, "'");
            for (int i = 0; i < pad; ++i) {
                const RegId p = g.pool.alloc();
                g.b.iadd(p, g.anyAcc(i), g.base);
                pads.push_back(p);
            }
        }
        g.b.bar();
        if (shared) {
            const RegId t = g.pool.alloc();
            // Read the neighbour warp's contribution.
            g.b.ldShared(t, saddr, 1);
            g.b.iadd(g.accs[0], g.accs[0], t);
            g.pool.release(t);
            g.pool.release(saddr);
        }
        for (std::size_t i = 0; i < pads.size(); ++i) {
            g.b.bxor(g.anyAcc(static_cast<int>(i)),
                     g.anyAcc(static_cast<int>(i)), pads[i]);
            g.pool.release(pads[i]);
        }
    }
}

void
emitEpilogue(Gen &g, const KernelSpec &spec)
{
    for (int i = 0; i < spec.persistent; ++i)
        g.b.stGlobal(g.base, g.accs[i], i);
    g.b.exitKernel();
}

} // namespace

Program
buildKernel(const KernelSpec &spec, int num_sms)
{
    fatalIf(spec.phases.empty(), "kernel '", spec.name, "' has no phases");
    fatalIf(spec.persistent < 2, "kernel '", spec.name,
            "' needs at least two accumulators");
    fatalIf(spec.regs < backgroundLive(spec) + 3,
            "kernel '", spec.name, "': register budget ", spec.regs,
            " too small");

    KernelInfo info;
    info.name = spec.name;
    info.numRegs = spec.regs;
    info.ctaThreads = spec.ctaThreads;
    info.sharedBytesPerCta = spec.sharedBytes;
    info.gridCtas = spec.gridCtasPerSm * num_sms;

    ProgramBuilder builder(info);
    RegPool pool(spec.regs, spec.scramble, spec.seed);
    Gen gen{builder, pool, Rng(spec.seed * 77 + 13), kNoReg, {}};

    emitPrologue(gen, spec);
    for (const auto &phase : spec.phases)
        emitPhase(gen, spec, phase);
    emitEpilogue(gen, spec);

    Program program = builder.finalize();
    fatalIf(program.info.numRegs > spec.regs,
            "kernel '", spec.name, "' generator exceeded its budget");
    program.info.numRegs = spec.regs;
    return program;
}

} // namespace rm
