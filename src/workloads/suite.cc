#include "workloads/suite.hh"

#include "common/errors.hh"

namespace rm {

namespace {

std::vector<WorkloadEntry>
makeSuite()
{
    std::vector<WorkloadEntry> suite;

    // ---- Occupancy-limited set (Fig. 7 / 9a / 10 / 11): register-
    // limited on the full GTX480 register file. ----

    {
        // BFS: memory-bound level traversal, divergent, barrier per
        // level. 21 (24) regs, |Bs| = 18.
        WorkloadEntry e;
        e.paperRegs = 21;
        e.paperBs = 18;
        e.occupancyLimited = true;
        e.spec.name = "BFS";
        e.spec.regs = 21;
        e.spec.ctaThreads = 512;
        e.spec.gridCtasPerSm = 9;
        e.spec.sharedBytes = 2048;
        e.spec.persistent = 6;
        e.spec.seed = 101;
        e.spec.phases = {
            {.trips = 6, .peak = 14, .loads = 4, .memTrips = 4,
             .aluPerTemp = 0, .divergent = true, .barrierAfter = true,
             .barrierLive = 10},
            {.trips = 8, .peak = 21, .loads = 5, .memTrips = 4,
             .aluPerTemp = 1, .divergent = true},
        };
        suite.push_back(e);
    }
    {
        // CUTCP: compute-bound short-range potential, SFU heavy.
        // 25 (28) regs, |Bs| = 20.
        WorkloadEntry e;
        e.paperRegs = 25;
        e.paperBs = 20;
        e.occupancyLimited = true;
        e.spec.name = "CUTCP";
        e.spec.regs = 25;
        e.spec.ctaThreads = 192;
        e.spec.gridCtasPerSm = 12;
        e.spec.sharedBytes = 0;
        e.spec.persistent = 7;
        e.spec.seed = 102;
        e.spec.phases = {
            {.trips = 10, .peak = 25, .loads = 2, .memTrips = 1,
             .aluPerTemp = 2, .useSfu = true},
            {.trips = 6, .peak = 18, .loads = 2, .memTrips = 1,
             .aluPerTemp = 2, .useSfu = true},
        };
        suite.push_back(e);
    }
    {
        // DWT2D: wavelet transform, wide bursts, barrier between
        // passes with a large live set. 44 (44) regs, |Bs| = 38.
        WorkloadEntry e;
        e.paperRegs = 44;
        e.paperBs = 38;
        e.occupancyLimited = true;
        e.spec.name = "DWT2D";
        e.spec.regs = 44;
        e.spec.ctaThreads = 416;
        e.spec.gridCtasPerSm = 6;
        e.spec.sharedBytes = 2048;
        e.spec.persistent = 8;
        e.spec.seed = 103;
        e.spec.phases = {
            {.trips = 5, .peak = 30, .loads = 3, .memTrips = 3,
             .aluPerTemp = 1, .barrierAfter = true, .barrierLive = 33},
            {.trips = 7, .peak = 44, .loads = 4, .memTrips = 3,
             .aluPerTemp = 1},
        };
        suite.push_back(e);
    }
    {
        // HotSpot3D: stencil sweeps with a barrier between time steps.
        // 32 (32) regs, |Bs| = 24.
        WorkloadEntry e;
        e.paperRegs = 32;
        e.paperBs = 24;
        e.occupancyLimited = true;
        e.spec.name = "HotSpot3D";
        e.spec.regs = 32;
        e.spec.ctaThreads = 448;
        e.spec.gridCtasPerSm = 6;
        e.spec.sharedBytes = 4096;
        e.spec.persistent = 7;
        e.spec.seed = 104;
        e.spec.phases = {
            {.trips = 8, .peak = 32, .loads = 4, .memTrips = 4,
             .aluPerTemp = 1, .barrierAfter = true, .barrierLive = 14},
            {.trips = 8, .peak = 26, .loads = 4, .memTrips = 4,
             .aluPerTemp = 1},
        };
        suite.push_back(e);
    }
    {
        // MRI-Q: compute-dominated Q matrix, SFU trigonometry.
        // 21 (24) regs, |Bs| = 18.
        WorkloadEntry e;
        e.paperRegs = 21;
        e.paperBs = 18;
        e.occupancyLimited = true;
        e.spec.name = "MRI-Q";
        e.spec.regs = 21;
        e.spec.ctaThreads = 512;
        e.spec.gridCtasPerSm = 9;
        e.spec.sharedBytes = 0;
        e.spec.persistent = 6;
        e.spec.seed = 105;
        e.spec.phases = {
            {.trips = 12, .peak = 21, .loads = 1, .memTrips = 1,
             .aluPerTemp = 3, .useSfu = true},
        };
        suite.push_back(e);
    }
    {
        // ParticleFilter: resampling with divergent weights.
        // 32 (32) regs, |Bs| = 20.
        WorkloadEntry e;
        e.paperRegs = 32;
        e.paperBs = 20;
        e.occupancyLimited = true;
        e.spec.name = "ParticleFilter";
        e.spec.regs = 32;
        e.spec.ctaThreads = 512;
        e.spec.gridCtasPerSm = 9;
        e.spec.sharedBytes = 2048;
        e.spec.persistent = 8;
        e.spec.seed = 106;
        e.spec.phases = {
            {.trips = 4, .peak = 20, .loads = 3, .memTrips = 3,
             .divergent = true, .barrierAfter = true, .barrierLive = 12},
            {.trips = 8, .peak = 32, .loads = 4, .memTrips = 4,
             .aluPerTemp = 1, .divergent = true},
        };
        suite.push_back(e);
    }
    {
        // RadixSort: multi-pass scan with high-live barriers.
        // 33 (36) regs, |Bs| = 30.
        WorkloadEntry e;
        e.paperRegs = 33;
        e.paperBs = 30;
        e.occupancyLimited = true;
        e.spec.name = "RadixSort";
        e.spec.regs = 33;
        e.spec.ctaThreads = 352;
        e.spec.gridCtasPerSm = 9;
        e.spec.sharedBytes = 4096;
        e.spec.persistent = 7;
        e.spec.seed = 107;
        e.spec.phases = {
            {.trips = 5, .peak = 28, .loads = 3, .memTrips = 4,
             .barrierAfter = true, .barrierLive = 25},
            {.trips = 5, .peak = 33, .loads = 4, .memTrips = 4,
             .barrierAfter = true, .barrierLive = 25},
            {.trips = 4, .peak = 20, .loads = 3, .memTrips = 3,
             .divergent = true},
        };
        suite.push_back(e);
    }
    {
        // SAD: load-dominated block matching. 30 (32) regs, |Bs| = 20.
        WorkloadEntry e;
        e.paperRegs = 30;
        e.paperBs = 20;
        e.occupancyLimited = true;
        e.spec.name = "SAD";
        e.spec.regs = 30;
        e.spec.ctaThreads = 512;
        e.spec.gridCtasPerSm = 9;
        e.spec.sharedBytes = 0;
        e.spec.persistent = 6;
        e.spec.seed = 108;
        e.spec.phases = {
            {.trips = 10, .peak = 30, .loads = 6, .memTrips = 5},
            {.trips = 3, .peak = 15, .loads = 3, .memTrips = 2},
        };
        suite.push_back(e);
    }

    // ---- Register-file-size-study set (Fig. 8 / 9b): register-
    // limited only on half the register file; Table I |Bs| computed
    // there. ----

    {
        // Gaussian: elimination steps, light register use.
        // 12 (12) regs, |Bs| = 8.
        WorkloadEntry e;
        e.paperRegs = 12;
        e.paperBs = 8;
        e.occupancyLimited = false;
        e.spec.name = "Gaussian";
        e.spec.regs = 12;
        e.spec.ctaThreads = 192;
        e.spec.gridCtasPerSm = 16;
        e.spec.sharedBytes = 0;
        e.spec.persistent = 3;
        e.spec.seed = 109;
        e.spec.phases = {
            {.trips = 10, .peak = 12, .loads = 1, .memTrips = 2,
             .aluPerTemp = 2},
            {.trips = 6, .peak = 9, .loads = 1, .memTrips = 1,
             .aluPerTemp = 2, .divergent = true},
        };
        suite.push_back(e);
    }
    {
        // HeartWall: tracking with shared-memory tiles and a barrier.
        // 28 (28) regs, |Bs| = 20.
        WorkloadEntry e;
        e.paperRegs = 28;
        e.paperBs = 20;
        e.occupancyLimited = false;
        e.spec.name = "HeartWall";
        e.spec.regs = 28;
        e.spec.ctaThreads = 256;
        e.spec.gridCtasPerSm = 8;
        e.spec.sharedBytes = 12288;
        e.spec.persistent = 7;
        e.spec.seed = 110;
        e.spec.phases = {
            {.trips = 6, .peak = 24, .loads = 3, .memTrips = 2,
             .aluPerTemp = 2, .barrierAfter = true, .barrierLive = 12},
            {.trips = 8, .peak = 28, .loads = 2, .memTrips = 2,
             .aluPerTemp = 3},
        };
        suite.push_back(e);
    }
    {
        // LavaMD: particle interactions in boxes. 37 (40) regs,
        // |Bs| = 28 in the paper; see EXPERIMENTS.md for the achieved
        // split on this resource model.
        WorkloadEntry e;
        e.paperRegs = 37;
        e.paperBs = 28;
        e.occupancyLimited = false;
        e.spec.name = "LavaMD";
        e.spec.regs = 37;
        e.spec.ctaThreads = 160;
        e.spec.gridCtasPerSm = 12;
        e.spec.sharedBytes = 12288;
        e.spec.persistent = 8;
        e.spec.seed = 111;
        e.spec.phases = {
            {.trips = 6, .peak = 37, .loads = 3, .memTrips = 1,
             .aluPerTemp = 3},
            {.trips = 5, .peak = 24, .loads = 2, .memTrips = 1,
             .aluPerTemp = 2},
        };
        suite.push_back(e);
    }
    {
        // MergeSort: merge passes with barriers. 15 (16) regs,
        // |Bs| = 12 — the paper's one no-gain pick.
        WorkloadEntry e;
        e.paperRegs = 15;
        e.paperBs = 12;
        e.occupancyLimited = false;
        e.spec.name = "MergeSort";
        e.spec.regs = 15;
        e.spec.ctaThreads = 384;
        e.spec.gridCtasPerSm = 12;
        e.spec.sharedBytes = 2048;
        e.spec.persistent = 5;
        e.spec.seed = 112;
        e.spec.phases = {
            {.trips = 8, .peak = 15, .loads = 3, .memTrips = 2,
             .aluPerTemp = 1, .barrierAfter = true, .barrierLive = 12},
            {.trips = 8, .peak = 13, .loads = 2, .memTrips = 2,
             .aluPerTemp = 1, .divergent = true},
        };
        suite.push_back(e);
    }
    {
        // MonteCarlo: RNG-heavy paths, barrier at reduction.
        // 13 (16) regs, |Bs| = 12.
        WorkloadEntry e;
        e.paperRegs = 13;
        e.paperBs = 12;
        e.occupancyLimited = false;
        e.spec.name = "MonteCarlo";
        e.spec.regs = 13;
        e.spec.ctaThreads = 384;
        e.spec.gridCtasPerSm = 12;
        e.spec.sharedBytes = 1024;
        e.spec.persistent = 4;
        e.spec.seed = 113;
        e.spec.phases = {
            {.trips = 10, .peak = 13, .loads = 2, .memTrips = 1,
             .aluPerTemp = 3, .useSfu = true, .barrierAfter = true,
             .barrierLive = 12},
            {.trips = 5, .peak = 10, .loads = 1, .memTrips = 1,
             .aluPerTemp = 2, .divergent = true},
        };
        suite.push_back(e);
    }
    {
        // SPMV: irregular gathers. 16 (16) regs, |Bs| = 12.
        WorkloadEntry e;
        e.paperRegs = 16;
        e.paperBs = 12;
        e.occupancyLimited = false;
        e.spec.name = "SPMV";
        e.spec.regs = 16;
        e.spec.ctaThreads = 384;
        e.spec.gridCtasPerSm = 12;
        e.spec.sharedBytes = 2048;
        e.spec.persistent = 5;
        e.spec.seed = 114;
        e.spec.phases = {
            {.trips = 10, .peak = 16, .loads = 3, .memTrips = 3,
             .aluPerTemp = 1, .barrierAfter = true, .barrierLive = 12},
            {.trips = 4, .peak = 12, .loads = 2, .memTrips = 2,
             .aluPerTemp = 1, .divergent = true},
        };
        suite.push_back(e);
    }
    {
        // SRAD: diffusion stencil with divergence. 18 (20) regs,
        // |Bs| = 12.
        WorkloadEntry e;
        e.paperRegs = 18;
        e.paperBs = 12;
        e.occupancyLimited = false;
        e.spec.name = "SRAD";
        e.spec.regs = 18;
        e.spec.ctaThreads = 256;
        e.spec.gridCtasPerSm = 12;
        e.spec.sharedBytes = 2048;
        e.spec.persistent = 5;
        e.spec.seed = 115;
        e.spec.phases = {
            {.trips = 8, .peak = 18, .loads = 2, .memTrips = 2,
             .aluPerTemp = 2, .divergent = true},
            {.trips = 6, .peak = 14, .loads = 2, .memTrips = 2,
             .aluPerTemp = 1},
        };
        suite.push_back(e);
    }
    {
        // TPACF: histogram correlation, compute heavy with a barrier.
        // 28 (28) regs, |Bs| = 20.
        WorkloadEntry e;
        e.paperRegs = 28;
        e.paperBs = 20;
        e.occupancyLimited = false;
        e.spec.name = "TPACF";
        e.spec.regs = 28;
        e.spec.ctaThreads = 256;
        e.spec.gridCtasPerSm = 8;
        e.spec.sharedBytes = 12288;
        e.spec.persistent = 7;
        e.spec.seed = 116;
        e.spec.phases = {
            {.trips = 12, .peak = 28, .loads = 2, .memTrips = 1,
             .aluPerTemp = 4, .barrierAfter = true, .barrierLive = 12},
            {.trips = 6, .peak = 20, .loads = 2, .memTrips = 1,
             .aluPerTemp = 2, .divergent = true},
        };
        suite.push_back(e);
    }

    return suite;
}

} // namespace

const std::vector<WorkloadEntry> &
paperSuite()
{
    static const std::vector<WorkloadEntry> suite = makeSuite();
    return suite;
}

const WorkloadEntry &
workload(const std::string &name)
{
    for (const auto &entry : paperSuite()) {
        if (entry.spec.name == name)
            return entry;
    }
    fatal("workload: unknown workload '", name, "'");
}

Program
buildWorkload(const std::string &name)
{
    return buildKernel(workload(name).spec);
}

std::vector<std::string>
occupancyLimitedSet()
{
    std::vector<std::string> names;
    for (const auto &entry : paperSuite()) {
        if (entry.occupancyLimited)
            names.push_back(entry.spec.name);
    }
    return names;
}

std::vector<std::string>
halfRfSet()
{
    std::vector<std::string> names;
    for (const auto &entry : paperSuite()) {
        if (!entry.occupancyLimited)
            names.push_back(entry.spec.name);
    }
    return names;
}

} // namespace rm
