#ifndef RM_WORKLOADS_SUITE_HH
#define RM_WORKLOADS_SUITE_HH

/**
 * @file
 * The 16-workload suite of the paper (Table I): synthetic analogues of
 * the Rodinia / Parboil / CUDA-SDK kernels, tuned so that (a) each
 * kernel's architected register demand equals the Table I count, (b)
 * the eight occupancy-limited kernels are register-limited on the
 * GTX480 baseline (Fig. 7 set) while the other eight only become
 * register-limited when the register file is halved (Fig. 8 set), and
 * (c) the |Es| heuristic reproduces the Table I base-set sizes.
 */

#include <string>
#include <vector>

#include "workloads/generator.hh"

namespace rm {

/** One suite entry: the generator spec plus the paper's Table I row. */
struct WorkloadEntry
{
    KernelSpec spec;
    /** Table I registers per thread (raw). */
    int paperRegs = 0;
    /** Table I |Bs|. */
    int paperBs = 0;
    /**
     * True for the Fig. 7 set (register-limited on the full-size
     * register file); false for the Fig. 8 set (register-limited only
     * on the halved register file, where Table I's |Bs| applies).
     */
    bool occupancyLimited = false;
};

/** All 16 workloads in Table I order. */
const std::vector<WorkloadEntry> &paperSuite();

/** Lookup by name; throws FatalError when unknown. */
const WorkloadEntry &workload(const std::string &name);

/** Build the kernel program of a suite workload. */
Program buildWorkload(const std::string &name);

/** Names of the 8 occupancy-limited workloads (Fig. 7 / 9a / 10-13). */
std::vector<std::string> occupancyLimitedSet();

/** Names of the 8 register-file-size-study workloads (Fig. 8 / 9b). */
std::vector<std::string> halfRfSet();

} // namespace rm

#endif // RM_WORKLOADS_SUITE_HH
