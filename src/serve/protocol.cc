#include "serve/protocol.hh"

#include "obs/export.hh"
#include "obs/json.hh"

namespace rm {

const char *
jobOutcomeName(JobOutcome outcome)
{
    switch (outcome) {
      case JobOutcome::Ok:
        return "ok";
      case JobOutcome::Failed:
        return "failed";
      case JobOutcome::Preempted:
        return "preempted";
      case JobOutcome::Overloaded:
        return "overloaded";
      case JobOutcome::Quarantined:
        return "quarantined";
      case JobOutcome::ShuttingDown:
        return "shutting-down";
      case JobOutcome::BadRequest:
        return "bad-request";
    }
    return "unknown";
}

namespace {

JobOutcome
outcomeFromName(const std::string &name)
{
    for (const JobOutcome o :
         {JobOutcome::Ok, JobOutcome::Failed, JobOutcome::Preempted,
          JobOutcome::Overloaded, JobOutcome::Quarantined,
          JobOutcome::ShuttingDown, JobOutcome::BadRequest})
        if (name == jobOutcomeName(o))
            return o;
    throw JsonSchemaError("job response: unknown status '" + name + "'");
}

} // namespace

std::string
encodeJobRequest(const JobRequest &request)
{
    JsonWriter w;
    w.beginObject();
    w.key("id").value(request.id);
    w.key("client").value(request.client);
    w.key("workload").value(request.workload);
    w.key("policy").value(request.policy);
    w.key("arch").value(request.arch);
    w.key("priority").value(request.priority);
    w.key("max_cycles").value(request.maxCycles);
    w.endObject();
    return w.take();
}

JobRequest
decodeJobRequest(const JsonValue &doc)
{
    requireJsonObject(doc, "job request");
    JobRequest request;
    request.id = jsonString(doc, "id");
    request.client = jsonString(doc, "client");
    request.workload = jsonString(doc, "workload");
    request.policy = jsonString(doc, "policy");
    request.arch = jsonString(doc, "arch", "GTX480");
    request.priority = jsonInt(doc, "priority");
    request.maxCycles = jsonU64(doc, "max_cycles");
    if (request.workload.empty())
        throw JsonSchemaError("job request: missing 'workload'");
    if (request.policy.empty())
        throw JsonSchemaError("job request: missing 'policy'");
    return request;
}

std::string
encodeJobResponse(const JobResponse &response)
{
    JsonWriter w;
    w.beginObject();
    w.key("id").value(response.id);
    w.key("status").value(jobOutcomeName(response.outcome));
    if (!response.error.empty())
        w.key("error").value(response.error);
    if (!response.key.empty())
        w.key("key").value(response.key);
    w.key("cached").value(response.cached);
    w.key("attempts").value(response.attempts);
    if (response.retryAfterMs > 0.0)
        w.key("retry_after_ms").value(response.retryAfterMs);
    if (response.hasStats) {
        w.key("stats");
        statsToJson(w, response.stats);
    }
    w.endObject();
    return w.take();
}

JobResponse
decodeJobResponse(const JsonValue &doc)
{
    requireJsonObject(doc, "job response");
    JobResponse response;
    response.id = jsonString(doc, "id");
    response.outcome = outcomeFromName(jsonString(doc, "status"));
    response.error = jsonString(doc, "error");
    response.key = jsonString(doc, "key");
    response.cached = jsonBool(doc, "cached");
    response.attempts = jsonInt(doc, "attempts");
    response.retryAfterMs = jsonNumber(doc, "retry_after_ms");
    if (const JsonValue *stats = jsonObject(doc, "stats")) {
        response.stats = statsFromJson(*stats);
        response.hasStats = true;
    }
    return response;
}

} // namespace rm
