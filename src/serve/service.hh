#ifndef RM_SERVE_SERVICE_HH
#define RM_SERVE_SERVICE_HH

/**
 * @file
 * SweepService: the socket-free core of the rm-serve daemon. Clients
 * submit one sweep cell at a time (serve/protocol.hh) and get exactly
 * one asynchronous response each; the transport (serve/net.hh, or a
 * test calling submit() directly) only moves bytes.
 *
 * The service is engineered to never lose acknowledged work:
 *
 *  - Admission control: a bounded queue and a per-client in-flight cap
 *    turn overload into a structured "overloaded" response with a
 *    retry-after hint (an EWMA of recent cell service times scaled by
 *    the backlog) instead of unbounded memory growth.
 *  - Durable result cache: completed cells append to a JSONL journal
 *    (core/checkpoint.hh, fsync'd per record by default) keyed by
 *    sweepCaseKey. A restarted daemon replays the journal — tolerating
 *    a torn trailing line from a crash — and serves those cells from
 *    cache without re-simulating. Identical in-flight submissions are
 *    coalesced onto one simulation.
 *  - Retry with backoff: a failed cell is retried under a
 *    deterministic reseed (base + attempt * golden-ratio increment,
 *    the sweep runner's contract) after an exponential, jittered
 *    backoff. Deterministic failures (compile/lint) never retry, and a
 *    (workload, policy) pair that keeps failing trips a circuit
 *    breaker: further submissions are quarantined until a cooldown
 *    passes, then one probe is let through (half-open).
 *  - Priority preemption: when every worker is busy and a higher-
 *    priority job arrives, the lowest-priority running cell is
 *    cooperatively cancelled. Its engine snapshot (sim/snapshot.hh)
 *    is persisted and the job re-queued — when it runs again it
 *    resumes from the snapshot, so preemption costs zero simulated
 *    cycles (restore-then-run ≡ uninterrupted, the PR 5 invariant).
 *  - Graceful drain: drain() stops admission, cancels running cells
 *    (which snapshot and answer "preempted"; their snapshots survive
 *    for the next process), answers queued jobs "shutting-down", and
 *    fsyncs the journal before returning.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "core/sweep.hh"
#include "serve/protocol.hh"
#include "sim/gpu.hh"

namespace rm {

class JsonlCheckpoint;

/** Tuning knobs of one SweepService instance. */
struct ServeConfig
{
    /** Worker threads simulating cells (clamped to >= 1). */
    int workers = 2;
    /** Max queued (not yet running) jobs before "overloaded". */
    std::size_t queueLimit = 32;
    /** Max in-flight (queued + running) jobs per client name. */
    int perClientLimit = 8;
    /** Extra attempts after a sim failure (deterministic reseed). */
    int retries = 2;
    /** Exponential backoff between retry attempts, jittered +-25%. */
    double backoffBaseMs = 25.0;
    double backoffMaxMs = 1000.0;
    /** Consecutive deterministic job failures of one (workload,
     *  policy) pair before its breaker opens (0 disables). */
    int breakerThreshold = 3;
    /** How long an open breaker quarantines the pair before letting a
     *  half-open probe through. */
    double breakerCooldownMs = 5000.0;
    /** Durable result journal (JSONL); empty disables durability. */
    std::string journalPath;
    /** fsync cadence of the journal (1: every acknowledged record). */
    int journalFsyncEvery = 1;
    /** Snapshot directory for preempted cells; empty disables resume
     *  (preempted work is then genuinely lost). */
    std::string snapshotDir;
    /** Periodic snapshot cadence for running cells (simulated cycles);
     *  the final snapshot at the preemption point is always taken. */
    std::uint64_t snapshotEvery = 0;
    /** Base memory seed (attempt n simulates with seed + n * gamma). */
    std::uint64_t memSeed = 1;
    /** Run the static lint gate before simulating each cell. */
    bool lint = true;
    /** Seed of the backoff-jitter RNG (determinism in tests). */
    std::uint64_t jitterSeed = 0x5eedULL;
    /**
     * Test seam: replaces the per-cell simulation (runSweep) when set.
     * Receives the fully prepared cell and sweep options — including
     * gpu.control.cancel, which a faithful stub must poll to observe
     * preemption. Production leaves this empty.
     */
    std::function<SweepResult(const SweepCase &, const SweepOptions &)>
        runCell;
};

/** Point-in-time counter snapshot (exported as serve.* metrics). */
struct ServeCounters
{
    std::uint64_t admitted = 0;
    std::uint64_t rejectedOverload = 0;
    std::uint64_t rejectedClientCap = 0;
    std::uint64_t rejectedQuarantine = 0;
    std::uint64_t rejectedDraining = 0;
    std::uint64_t badRequests = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t preempted = 0;
    std::uint64_t retries = 0;
    std::uint64_t breakerOpens = 0;
    std::uint64_t journalReplayed = 0;
    std::size_t queueDepth = 0;
    std::size_t running = 0;
};

/** The daemon core. Construction starts the workers and replays the
 *  journal; destruction drains. Thread-safe. */
class SweepService
{
  public:
    using Callback = std::function<void(const JobResponse &)>;

    explicit SweepService(ServeConfig config);
    ~SweepService();

    SweepService(const SweepService &) = delete;
    SweepService &operator=(const SweepService &) = delete;

    /**
     * Submit one job. @p cb is invoked exactly once with the response
     * — synchronously (rejections, cache hits) or later from a worker
     * thread. Callbacks must not re-enter the service.
     */
    void submit(const JobRequest &request, Callback cb);

    /** Graceful shutdown; idempotent. Returns when every accepted job
     *  has been answered and the journal is fsync'd. */
    void drain();

    bool draining() const { return stopFlag.load(); }

    ServeCounters counters() const;

    /** serve.* counters/gauges as a metrics-registry JSON document. */
    std::string metricsJson() const;

  private:
    struct Waiter
    {
        std::string id;
        std::string client;
        Callback cb;
    };

    struct Job
    {
        SweepCase cell;
        std::string key;
        int priority = 0;
        std::uint64_t maxCycles = 0;
        std::uint64_t seq = 0;  ///< FIFO tiebreak within a priority
        int attempt = 0;        ///< failed attempts so far
        std::chrono::steady_clock::time_point readyAt{};
        std::chrono::steady_clock::time_point startedAt{};
        std::atomic<bool> cancel{false};
        /** Cancelled to yield to a higher priority (re-queue on
         *  Preempted) rather than to drain (answer "preempted"). */
        bool preemptToYield = false;
        /** This job holds its pair's half-open breaker probe slot;
         *  every terminal outcome must release it. */
        bool breakerProbe = false;
        std::vector<Waiter> waiters;  ///< first entry is the submitter
    };

    struct Breaker
    {
        int consecutiveFailures = 0;
        bool open = false;
        bool probing = false;  ///< half-open probe in flight
        std::chrono::steady_clock::time_point openUntil{};
    };

    void workerLoop();
    std::shared_ptr<Job> popReadyJob(std::unique_lock<std::mutex> &lock);
    SweepResult runCell(Job &job);
    void finishJob(const std::shared_ptr<Job> &job,
                   const SweepResult &result,
                   std::unique_lock<std::mutex> &lock);
    void respondAll(Job &job, const JobResponse &base,
                    std::unique_lock<std::mutex> &lock);
    double retryAfterEstimateMs() const;  ///< callers hold the mutex
    void breakerRecord(const std::string &pair, bool success);

    ServeConfig config;
    std::unique_ptr<JsonlCheckpoint> journal;

    mutable std::mutex mutex;
    std::condition_variable cv;       ///< wakes workers
    std::condition_variable idleCv;   ///< wakes drain()
    std::atomic<bool> stopFlag{false};
    std::mutex drainMutex;
    bool drained = false;             ///< guarded by drainMutex

    std::vector<std::shared_ptr<Job>> queue;
    std::map<const Job *, std::shared_ptr<Job>> running;
    /** Coalescing index: key -> queued or running job. */
    std::map<std::string, std::shared_ptr<Job>> inFlight;
    /** Results completed by this process (the journal's replay index
     *  is immutable, so fresh completions live here). */
    std::map<std::string, SimStats> fresh;
    std::map<std::string, int> clientLoad;
    std::map<std::string, Breaker> breakers;
    std::uint64_t nextSeq = 0;
    double ewmaServiceMs = 0.0;
    Rng jitter;

    ServeCounters stats;
    std::vector<std::thread> workers;
};

/** "GTX480" / "half-RF" to a GpuConfig; throws JsonSchemaError on an
 *  unknown label (the request came off the wire). */
GpuConfig archConfig(const std::string &arch);

} // namespace rm

#endif // RM_SERVE_SERVICE_HH
