#ifndef RM_SERVE_PROTOCOL_HH
#define RM_SERVE_PROTOCOL_HH

/**
 * @file
 * Wire protocol of the rm-serve daemon: newline-delimited JSON, one
 * request or response object per line. The codec is deliberately
 * paranoid — it decodes bytes straight off a socket — so malformed
 * JSON fails in parseJson (FatalError) and well-formed JSON with the
 * wrong shape fails in the typed accessors (JsonSchemaError naming the
 * offending key); neither ever default-constructs a job silently.
 *
 * Job request:
 *
 *     {"id":"t0-7","client":"t0","workload":"bprop","policy":"regmutex",
 *      "arch":"GTX480","priority":1,"max_cycles":0}
 *
 * Job response (stats present only on "ok"):
 *
 *     {"id":"t0-7","status":"ok","key":"bprop|regmutex|...","cached":true,
 *      "attempts":1,"stats":{...statsToJson...}}
 *
 * Rejections carry a backpressure hint:
 *
 *     {"id":"t0-8","status":"overloaded","error":"queue full",
 *      "retry_after_ms":120.0}
 *
 * Control messages ({"cmd":"ping"|"metrics"|"drain",...}) are handled
 * by the net layer (serve/net.hh), not this codec.
 */

#include <cstdint>
#include <string>

#include "sim/stats.hh"

namespace rm {

struct JsonValue;

/** One sweep-cell job submitted to the daemon. */
struct JobRequest
{
    /** Client-chosen correlation id, echoed verbatim in the response
     *  (responses complete out of order). */
    std::string id;
    /** Tenant name for the per-client in-flight cap; empty is a valid
     *  (shared) anonymous tenant. */
    std::string client;
    std::string workload;
    std::string policy;
    /** Architecture label: "GTX480" (default) or "half-RF". */
    std::string arch = "GTX480";
    /** Higher priority runs first and may preempt a running lower-
     *  priority cell (its snapshot resumes later — no lost cycles). */
    int priority = 0;
    /** Per-job simulated-cycle budget (0: unlimited). A job that hits
     *  it answers "preempted" with its snapshot kept for resumption. */
    std::uint64_t maxCycles = 0;
};

/** Terminal disposition of one job, in the "status" response field. */
enum class JobOutcome {
    Ok,           ///< simulated (or cache hit) — stats attached
    Failed,       ///< compile/lint/sim failure after all retries
    Preempted,    ///< stopped by a budget or drain; snapshot kept
    Overloaded,   ///< admission refused: queue full / client cap
    Quarantined,  ///< circuit breaker open for (workload, policy)
    ShuttingDown, ///< daemon draining; resubmit after restart
    BadRequest,   ///< request did not decode / unknown arch
};

/** Stable lower-case label ("ok", "shutting-down", ...). */
const char *jobOutcomeName(JobOutcome outcome);

/** One response line; ids pair it with its request. */
struct JobResponse
{
    std::string id;
    JobOutcome outcome = JobOutcome::Ok;
    /** Failure detail / rejection reason (empty on ok). */
    std::string error;
    /** sweepCaseKey of the resolved cell (also the cache identity). */
    std::string key;
    /** True when served from the journal/result cache — no simulation
     *  was run for this response. */
    bool cached = false;
    /** Simulation attempts spent (cache hits report 0). */
    int attempts = 0;
    /** Backpressure hint on Overloaded/Quarantined: come back after
     *  roughly this many milliseconds. */
    double retryAfterMs = 0.0;
    bool hasStats = false;
    SimStats stats;
};

std::string encodeJobRequest(const JobRequest &request);
/** @throws JsonSchemaError on a wrong-shaped document. */
JobRequest decodeJobRequest(const JsonValue &doc);

std::string encodeJobResponse(const JobResponse &response);
/** @throws JsonSchemaError on a wrong-shaped document. */
JobResponse decodeJobResponse(const JsonValue &doc);

} // namespace rm

#endif // RM_SERVE_PROTOCOL_HH
