#include "serve/net.hh"

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/errors.hh"
#include "common/logging.hh"
#include "obs/json.hh"
#include "serve/protocol.hh"
#include "serve/service.hh"

namespace rm {

/**
 * Shared state of one client connection. Job responses arrive from
 * worker threads while the reader thread may be writing a rejection,
 * so every send goes through writeLine()'s mutex; once a send fails
 * the connection is dead and later responses are dropped (the journal
 * still has the result — the client re-asks after reconnecting).
 */
struct ServeServer::Connection
{
    int fd = -1;
    std::mutex writeMutex;
    bool alive = true;  ///< guarded by writeMutex
    /** The peer hung up and the reader exited: the accept loop may
     *  join the thread and close the socket. Never set on a shutdown-
     *  stopped reader — drain still owes that client its answers. */
    std::atomic<bool> done{false};

    void
    writeLine(const std::string &text)
    {
        std::string line = text;
        line.push_back('\n');
        const std::lock_guard<std::mutex> lock(writeMutex);
        if (!alive)
            return;
        std::size_t done = 0;
        while (done < line.size()) {
            const ssize_t n = ::send(fd, line.data() + done,
                                     line.size() - done, MSG_NOSIGNAL);
            if (n <= 0) {
                alive = false;
                return;
            }
            done += static_cast<std::size_t>(n);
        }
    }
};

namespace {

int
listenOn(const std::string &host, int port, int backlog, int *bound)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    fatalIf(fd < 0, "serve: cannot create socket");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        fatal("serve: bad listen address '", host, "'");
    }
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        ::close(fd);
        fatal("serve: cannot bind ", host, ":", port);
    }
    if (::listen(fd, backlog) != 0) {
        ::close(fd);
        fatal("serve: cannot listen on ", host, ":", port);
    }
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&actual), &len) ==
        0)
        *bound = static_cast<int>(ntohs(actual.sin_port));
    return fd;
}

/** Wait for readability with a short timeout so stop flags get seen. */
bool
waitReadable(int fd, const std::atomic<bool> &stop)
{
    while (!stop.load()) {
        pollfd p{};
        p.fd = fd;
        p.events = POLLIN;
        const int n = ::poll(&p, 1, 200);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n > 0)
            return (p.revents & (POLLERR | POLLHUP | POLLNVAL)) == 0 ||
                   (p.revents & POLLIN) != 0;
    }
    return false;
}

} // namespace

ServeServer::ServeServer(SweepService &svc, ServeNetConfig cfg)
    : service(svc), net(std::move(cfg))
{
    listenFd = listenOn(net.host, net.port, net.backlog, &boundPort);
}

ServeServer::~ServeServer()
{
    if (listenFd >= 0)
        ::close(listenFd);
}

void
ServeServer::handleLine(const std::shared_ptr<Connection> &conn,
                        const std::string &line)
{
    JsonValue doc;
    try {
        doc = parseJson(line);
    } catch (const std::exception &e) {
        JobResponse bad;
        bad.outcome = JobOutcome::BadRequest;
        bad.error = e.what() ? e.what() : "malformed JSON";
        conn->writeLine(encodeJobResponse(bad));
        return;
    }

    // Control lines are handled here; everything else is a job.
    if (doc.isObject() && doc.has("cmd")) {
        std::string cmd;
        std::string id;
        try {
            cmd = jsonString(doc, "cmd");
            id = jsonString(doc, "id");
        } catch (const std::exception &e) {
            JobResponse bad;
            bad.outcome = JobOutcome::BadRequest;
            bad.error = e.what() ? e.what() : "bad command";
            conn->writeLine(encodeJobResponse(bad));
            return;
        }
        const std::string idField =
            "\"id\":\"" + JsonWriter::escape(id) + "\",";
        if (cmd == "ping") {
            conn->writeLine("{" + idField +
                            "\"status\":\"ok\",\"pong\":true}");
        } else if (cmd == "metrics") {
            conn->writeLine("{" + idField +
                            "\"status\":\"ok\",\"metrics\":" +
                            service.metricsJson() + "}");
        } else if (cmd == "drain") {
            conn->writeLine("{" + idField +
                            "\"status\":\"ok\",\"draining\":true}");
            shutdown();
        } else {
            JobResponse bad;
            bad.id = id;
            bad.outcome = JobOutcome::BadRequest;
            bad.error = "unknown cmd '" + cmd + "'";
            conn->writeLine(encodeJobResponse(bad));
        }
        return;
    }

    JobRequest request;
    try {
        request = decodeJobRequest(doc);
    } catch (const std::exception &e) {
        JobResponse bad;
        bad.outcome = JobOutcome::BadRequest;
        // Echo the id defensively: jsonString throws when 'id' is
        // present but wrong-typed, and nothing may escape this handler
        // (an escaping exception would terminate the daemon).
        if (const JsonValue *id = doc.find("id");
            id != nullptr && id->kind == JsonValue::Kind::String)
            bad.id = id->string;
        bad.error = e.what() ? e.what() : "bad request";
        conn->writeLine(encodeJobResponse(bad));
        return;
    }
    service.submit(request, [conn](const JobResponse &response) {
        conn->writeLine(encodeJobResponse(response));
    });
}

void
ServeServer::serveConnection(const std::shared_ptr<Connection> &conn)
{
    std::string buffer;
    char chunk[4096];
    bool peerClosed = false;
    while (waitReadable(conn->fd, stopFlag)) {
        const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
        if (n <= 0) {
            peerClosed = true;
            break;
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
        // A client that streams an unbounded line is hostile: drop it
        // before the buffer becomes the memory bound.
        if (buffer.size() > (1u << 20) &&
            buffer.find('\n') == std::string::npos) {
            warn("serve: dropping connection with a >1MiB line");
            peerClosed = true;
            break;
        }
        std::size_t start = 0;
        for (std::size_t nl = buffer.find('\n', start);
             nl != std::string::npos; nl = buffer.find('\n', start)) {
            std::string line = buffer.substr(start, nl - start);
            start = nl + 1;
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (!line.empty())
                handleLine(conn, line);
        }
        buffer.erase(0, start);
    }
    // On shutdown the reader exits but the connection stays writable:
    // the service drain still owes this client its in-flight answers.
    // Only a peer that actually went away gets marked dead.
    if (peerClosed) {
        {
            const std::lock_guard<std::mutex> lock(conn->writeMutex);
            conn->alive = false;
        }
        // After alive is down no late response touches the fd, so the
        // accept loop may reap this connection (join + close).
        conn->done.store(true);
    }
}

/**
 * Join reader threads whose peer hung up and release their sockets.
 * Without this a long-running daemon serving many short-lived
 * connections accumulates a joinable thread and an open fd per past
 * client until shutdown. Runs on the accept thread between polls.
 */
void
ServeServer::reapFinished()
{
    const std::lock_guard<std::mutex> lock(connMutex);
    for (std::size_t i = 0; i < connections.size();) {
        if (!connections[i]->done.load()) {
            ++i;
            continue;
        }
        connThreads[i].join();
        ::close(connections[i]->fd);
        connections.erase(connections.begin() +
                          static_cast<std::ptrdiff_t>(i));
        connThreads.erase(connThreads.begin() +
                          static_cast<std::ptrdiff_t>(i));
    }
}

std::size_t
ServeServer::liveConnections()
{
    const std::lock_guard<std::mutex> lock(connMutex);
    return connections.size();
}

void
ServeServer::run()
{
    while (!stopFlag.load()) {
        reapFinished();
        pollfd p{};
        p.fd = listenFd;
        p.events = POLLIN;
        const int n = ::poll(&p, 1, 200);
        if (n <= 0)
            continue;  // timeout or EINTR: reap and re-check the flag
        sockaddr_in peer{};
        socklen_t len = sizeof(peer);
        const int fd = ::accept(
            listenFd, reinterpret_cast<sockaddr *>(&peer), &len);
        if (fd < 0)
            continue;
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        {
            const std::lock_guard<std::mutex> lock(connMutex);
            connections.push_back(conn);
            connThreads.emplace_back(
                [this, conn] { serveConnection(conn); });
        }
    }

    // Graceful drain: every accepted job answers (ok / preempted /
    // shutting-down) before the sockets close, so a client blocked on
    // a response is never left hanging.
    service.drain();
    {
        const std::lock_guard<std::mutex> lock(connMutex);
        for (const std::shared_ptr<Connection> &conn : connections) {
            const std::lock_guard<std::mutex> w(conn->writeMutex);
            conn->alive = false;
            ::shutdown(conn->fd, SHUT_RDWR);
        }
    }
    for (std::thread &t : connThreads)
        if (t.joinable())
            t.join();
    {
        const std::lock_guard<std::mutex> lock(connMutex);
        for (const std::shared_ptr<Connection> &conn : connections)
            ::close(conn->fd);
        connections.clear();
    }
}

} // namespace rm
