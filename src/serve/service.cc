#include "serve/service.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "core/checkpoint.hh"
#include "obs/export.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"

namespace rm {

namespace {

using Clock = std::chrono::steady_clock;

double
msBetween(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

/** The sweep runner's deterministic retry reseed increment. */
constexpr std::uint64_t kSeedGamma = 0x9e3779b9ULL;

} // namespace

GpuConfig
archConfig(const std::string &arch)
{
    if (arch == "GTX480")
        return gtx480Config();
    if (arch == "half-RF" || arch == "half-rf")
        return halfRegisterFile(gtx480Config());
    throw JsonSchemaError("job request: unknown arch '" + arch +
                          "' (expected \"GTX480\" or \"half-RF\")");
}

SweepService::SweepService(ServeConfig cfg)
    : config(std::move(cfg)),
      journal(std::make_unique<JsonlCheckpoint>(config.journalPath,
                                                config.journalFsyncEvery)),
      jitter(config.jitterSeed)
{
    if (config.workers < 1)
        config.workers = 1;
    stats.journalReplayed = journal->replayed();
    workers.reserve(static_cast<std::size_t>(config.workers));
    for (int i = 0; i < config.workers; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

SweepService::~SweepService() { drain(); }

void
SweepService::submit(const JobRequest &request, Callback cb)
{
    JobResponse response;
    response.id = request.id;

    SweepCase cell;
    cell.workload = request.workload;
    cell.policy = request.policy;
    cell.arch = request.arch;
    try {
        cell.config = archConfig(request.arch);
    } catch (const JsonSchemaError &e) {
        response.outcome = JobOutcome::BadRequest;
        response.error = e.what() ? e.what() : "bad request";
        {
            const std::lock_guard<std::mutex> lock(mutex);
            ++stats.badRequests;
        }
        cb(response);
        return;
    }
    const std::string key = sweepCaseKey(cell);
    response.key = key;
    const std::string pair = cell.workload + "|" + cell.policy;

    std::unique_lock<std::mutex> lock(mutex);

    if (stopFlag.load()) {
        ++stats.rejectedDraining;
        response.outcome = JobOutcome::ShuttingDown;
        response.error = "daemon draining; resubmit after restart";
        lock.unlock();
        cb(response);
        return;
    }

    // Circuit breaker: a (workload, policy) pair with a streak of
    // deterministic failures is quarantined until its cooldown passes;
    // then exactly one probe job is admitted (half-open) to test it.
    // The probe slot is only claimed further down, once the request is
    // genuinely enqueued — a cache hit or rejection below must not
    // leave `probing` set with no job in flight to ever clear it.
    Breaker *halfOpenProbe = nullptr;
    if (const auto it = breakers.find(pair);
        it != breakers.end() && it->second.open) {
        Breaker &b = it->second;
        const Clock::time_point now = Clock::now();
        if (now < b.openUntil || b.probing) {
            ++stats.rejectedQuarantine;
            response.outcome = JobOutcome::Quarantined;
            response.error = "breaker open for " + pair + " after " +
                             std::to_string(b.consecutiveFailures) +
                             " consecutive failures";
            response.retryAfterMs =
                b.probing ? config.breakerCooldownMs
                          : std::max(1.0, msBetween(now, b.openUntil));
            lock.unlock();
            cb(response);
            return;
        }
        halfOpenProbe = &b;
    }

    // Result cache: the replayed journal first (results from previous
    // processes), then the completions of this process. Either way the
    // response costs zero simulation.
    const SimStats *hit = journal->find(key);
    if (hit == nullptr) {
        if (const auto it = fresh.find(key); it != fresh.end())
            hit = &it->second;
    }
    if (hit != nullptr) {
        ++stats.cacheHits;
        response.outcome = JobOutcome::Ok;
        response.cached = true;
        response.stats = *hit;
        response.hasStats = true;
        lock.unlock();
        cb(response);
        return;
    }

    // Admission control, first leg: the per-client in-flight cap is
    // checked before coalescing too — an attached waiter holds a
    // response slot just like a dedicated job, so duplicate keys must
    // not let one client sail past its bound. Rejections carry a
    // retry-after hint derived from the EWMA of recent cell service
    // times and the backlog.
    const auto loadIt = clientLoad.find(request.client);
    const int load = loadIt == clientLoad.end() ? 0 : loadIt->second;
    if (load >= config.perClientLimit) {
        ++stats.rejectedClientCap;
        response.outcome = JobOutcome::Overloaded;
        response.error = "client '" + request.client + "' has " +
                         std::to_string(load) +
                         " jobs in flight (cap " +
                         std::to_string(config.perClientLimit) + ")";
        response.retryAfterMs = retryAfterEstimateMs();
        lock.unlock();
        cb(response);
        return;
    }

    // Coalescing: an identical cell already queued or running gets
    // this submission attached as an extra waiter — one simulation,
    // many answers.
    if (const auto it = inFlight.find(key); it != inFlight.end()) {
        ++stats.coalesced;
        ++stats.admitted;
        ++clientLoad[request.client];
        it->second->waiters.push_back(
            Waiter{request.id, request.client, std::move(cb)});
        return;
    }

    // Admission control, second leg: the global queue bound.
    if (queue.size() >= config.queueLimit) {
        ++stats.rejectedOverload;
        response.outcome = JobOutcome::Overloaded;
        response.error =
            "queue full (" + std::to_string(queue.size()) + " jobs)";
        response.retryAfterMs = retryAfterEstimateMs();
        lock.unlock();
        cb(response);
        return;
    }

    auto job = std::make_shared<Job>();
    if (halfOpenProbe != nullptr) {
        halfOpenProbe->probing = true;  // this request IS the probe
        job->breakerProbe = true;
    }
    job->cell = std::move(cell);
    job->key = key;
    job->priority = request.priority;
    job->maxCycles = request.maxCycles;
    job->seq = nextSeq++;
    job->readyAt = Clock::now();
    job->waiters.push_back(
        Waiter{request.id, request.client, std::move(cb)});
    ++clientLoad[request.client];
    ++stats.admitted;
    inFlight[key] = job;
    queue.push_back(job);

    // Priority preemption: every worker busy and this job outranks a
    // running cell -> cooperatively cancel the lowest-priority victim.
    // Its snapshot is persisted at the preemption point and the job
    // re-queued, so yielding costs zero simulated cycles.
    if (running.size() >= static_cast<std::size_t>(config.workers)) {
        Job *victim = nullptr;
        for (const auto &[ptr, run] : running) {
            (void)ptr;
            if (run->preemptToYield || run->cancel.load())
                continue;
            if (run->priority >= job->priority)
                continue;
            if (victim == nullptr || run->priority < victim->priority ||
                (run->priority == victim->priority &&
                 run->seq > victim->seq))
                victim = run.get();
        }
        if (victim != nullptr) {
            victim->preemptToYield = true;
            victim->cancel.store(true);
        }
    }
    cv.notify_one();
}

std::shared_ptr<SweepService::Job>
SweepService::popReadyJob(std::unique_lock<std::mutex> &lock)
{
    for (;;) {
        if (stopFlag.load() && queue.empty())
            return nullptr;
        const Clock::time_point now = Clock::now();
        auto best = queue.end();
        auto earliest = queue.end();
        for (auto it = queue.begin(); it != queue.end(); ++it) {
            if (earliest == queue.end() ||
                (*it)->readyAt < (*earliest)->readyAt)
                earliest = it;
            if ((*it)->readyAt > now)
                continue;  // still backing off
            if (best == queue.end() ||
                (*it)->priority > (*best)->priority ||
                ((*it)->priority == (*best)->priority &&
                 (*it)->seq < (*best)->seq))
                best = it;
        }
        if (best != queue.end()) {
            std::shared_ptr<Job> job = *best;
            queue.erase(best);
            return job;
        }
        if (earliest == queue.end())
            cv.wait(lock);
        else
            cv.wait_until(lock, (*earliest)->readyAt);
    }
}

SweepResult
SweepService::runCell(Job &job)
{
    SweepOptions options;
    options.threads = 1;  // the cell runs inline on this worker thread
    options.retries = 0;  // the service owns retry/backoff/reseed
    options.lint = config.lint;
    options.snapshotDir = config.snapshotDir;
    // Deterministic reseed per retry attempt (the sweep runner's
    // gamma). A job resumed after preemption keeps its attempt count,
    // so the restored snapshot continues under the seed it was taken
    // with — the bit-identity invariant depends on that.
    options.gpu.memSeed =
        config.memSeed +
        static_cast<std::uint64_t>(job.attempt) * kSeedGamma;
    options.gpu.snapshotEvery = config.snapshotEvery;
    options.gpu.control.cancel = &job.cancel;
    options.gpu.control.maxCycles = job.maxCycles;
    if (config.runCell)
        return config.runCell(job.cell, options);
    std::vector<SweepResult> results = runSweep({job.cell}, options);
    return std::move(results.front());
}

void
SweepService::respondAll(Job &job, const JobResponse &base,
                         std::unique_lock<std::mutex> &lock)
{
    std::vector<Waiter> waiters = std::move(job.waiters);
    job.waiters.clear();
    for (const Waiter &w : waiters) {
        const auto it = clientLoad.find(w.client);
        if (it != clientLoad.end() && --it->second <= 0)
            clientLoad.erase(it);
    }
    lock.unlock();
    for (Waiter &w : waiters) {
        JobResponse response = base;
        response.id = w.id;
        w.cb(response);
    }
    lock.lock();
}

double
SweepService::retryAfterEstimateMs() const
{
    const double perCell = ewmaServiceMs > 0.0 ? ewmaServiceMs : 50.0;
    const double backlog =
        static_cast<double>(queue.size() + running.size() + 1);
    return std::max(1.0, perCell * backlog /
                             static_cast<double>(config.workers));
}

void
SweepService::breakerRecord(const std::string &pair, bool success)
{
    if (config.breakerThreshold <= 0)
        return;
    Breaker &b = breakers[pair];
    if (success) {
        b = Breaker{};  // close (a half-open probe succeeded, or the
                        // pair recovered on its own)
        return;
    }
    ++b.consecutiveFailures;
    b.probing = false;
    if (b.consecutiveFailures >= config.breakerThreshold) {
        b.open = true;
        b.openUntil =
            Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(
                    config.breakerCooldownMs));
        ++stats.breakerOpens;
    }
}

void
SweepService::finishJob(const std::shared_ptr<Job> &job,
                        const SweepResult &result,
                        std::unique_lock<std::mutex> &lock)
{
    const std::string pair =
        job->cell.workload + "|" + job->cell.policy;
    JobResponse base;
    base.key = job->key;
    base.attempts = job->attempt + 1;

    switch (result.status) {
      case SweepStatus::Ok: {
        fresh[job->key] = result.run.aggregate;
        inFlight.erase(job->key);
        breakerRecord(pair, true);
        const double ms = msBetween(job->startedAt, Clock::now());
        ewmaServiceMs =
            ewmaServiceMs == 0.0 ? ms : 0.8 * ewmaServiceMs + 0.2 * ms;
        ++stats.completed;
        base.outcome = JobOutcome::Ok;
        base.stats = result.run.aggregate;
        base.hasStats = true;
        respondAll(*job, base, lock);
        return;
      }
      case SweepStatus::CompileFailed:
      case SweepStatus::LintFailed:
        // Deterministic: retrying reproduces the same failure, so burn
        // no attempts and feed the breaker immediately.
        inFlight.erase(job->key);
        breakerRecord(pair, false);
        ++stats.failed;
        base.outcome = JobOutcome::Failed;
        base.error = result.error;
        respondAll(*job, base, lock);
        return;
      case SweepStatus::SimFailed:
      case SweepStatus::Deadlocked: {
        if (job->attempt < config.retries && !stopFlag.load()) {
            ++job->attempt;
            ++stats.retries;
            const int exponent = std::min(job->attempt - 1, 20);
            const double backoff = std::min(
                config.backoffMaxMs,
                config.backoffBaseMs *
                    static_cast<double>(std::uint64_t{1} << exponent));
            const double factor = 0.75 + 0.5 * jitter.uniformDouble();
            job->readyAt =
                Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        backoff * factor));
            queue.push_back(job);
            cv.notify_one();
            return;  // no response yet: the retry owns the answer
        }
        inFlight.erase(job->key);
        breakerRecord(pair, false);
        ++stats.failed;
        base.outcome = JobOutcome::Failed;
        base.error = result.error;
        respondAll(*job, base, lock);
        return;
      }
      case SweepStatus::Preempted: {
        ++stats.preempted;
        if (job->preemptToYield && !stopFlag.load()) {
            // Yielded to a higher-priority job: the snapshot holds the
            // progress, so just get back in line. Not an attempt —
            // the resumed run must keep this attempt's seed.
            job->preemptToYield = false;
            job->cancel.store(false);
            job->readyAt = Clock::now();
            queue.push_back(job);
            cv.notify_one();
            return;
        }
        inFlight.erase(job->key);
        // Terminal preemption (deadline hit, or cancelled by drain)
        // reaches no breaker verdict; if this job was the half-open
        // probe, release the slot so the pair can be probed again.
        if (job->breakerProbe) {
            if (const auto it = breakers.find(pair);
                it != breakers.end())
                it->second.probing = false;
        }
        base.outcome = JobOutcome::Preempted;
        base.error = result.error.empty()
                         ? std::string("preempted")
                         : result.error;
        base.error += "; snapshot kept — resubmit to resume";
        respondAll(*job, base, lock);
        return;
      }
    }
}

void
SweepService::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
        std::shared_ptr<Job> job = popReadyJob(lock);
        if (job == nullptr)
            return;
        running[job.get()] = job;
        job->startedAt = Clock::now();
        lock.unlock();

        SweepResult result;
        try {
            result = runCell(*job);
        } catch (const std::exception &e) {
            // runSweep isolates per-cell failures; anything escaping is
            // infrastructure (unwritable snapshot dir, ...). Fail the
            // job rather than the daemon.
            result.status = SweepStatus::SimFailed;
            result.error = e.what() ? e.what() : "unknown error";
        }
        if (result.status == SweepStatus::Ok && journal->enabled()) {
            try {
                journal->record(job->key, result.run.aggregate);
            } catch (const std::exception &e) {
                // Serve the result (it is correct) but say loudly that
                // durability is gone: a restart will re-simulate.
                warn("serve: journal append failed (", e.what(),
                     "); result for '", job->key, "' is not durable");
            }
        }

        lock.lock();
        running.erase(job.get());
        finishJob(job, result, lock);
        idleCv.notify_all();
    }
}

void
SweepService::drain()
{
    {
        const std::lock_guard<std::mutex> drainLock(drainMutex);
        if (drained)
            return;
        drained = true;
    }

    std::unique_lock<std::mutex> lock(mutex);
    stopFlag.store(true);
    // Queued jobs never ran: tell their waiters to resubmit after the
    // restart. Running jobs are cancelled; each snapshots at its
    // preemption point and answers "preempted" from its worker.
    std::vector<std::shared_ptr<Job>> pending = std::move(queue);
    queue.clear();
    for (const std::shared_ptr<Job> &job : pending) {
        ++stats.rejectedDraining;
        inFlight.erase(job->key);
        JobResponse base;
        base.key = job->key;
        base.outcome = JobOutcome::ShuttingDown;
        base.error = "daemon draining; resubmit after restart";
        respondAll(*job, base, lock);
    }
    for (const auto &[ptr, job] : running) {
        (void)ptr;
        job->cancel.store(true);
    }
    cv.notify_all();
    idleCv.wait(lock, [this] { return running.empty() && queue.empty(); });
    lock.unlock();

    cv.notify_all();
    for (std::thread &t : workers)
        if (t.joinable())
            t.join();
    journal->sync();
}

ServeCounters
SweepService::counters() const
{
    const std::lock_guard<std::mutex> lock(mutex);
    ServeCounters out = stats;
    out.queueDepth = queue.size();
    out.running = running.size();
    return out;
}

std::string
SweepService::metricsJson() const
{
    // MetricsRegistry is not thread-safe, so the service keeps native
    // counters under its mutex and materializes a registry on demand.
    const ServeCounters c = counters();
    MetricsRegistry registry;
    registry.counter("serve.admitted").add(c.admitted);
    registry.counter("serve.bad_requests").add(c.badRequests);
    registry.counter("serve.breaker_opens").add(c.breakerOpens);
    registry.counter("serve.cache_hits").add(c.cacheHits);
    registry.counter("serve.coalesced").add(c.coalesced);
    registry.counter("serve.completed").add(c.completed);
    registry.counter("serve.failed").add(c.failed);
    registry.counter("serve.journal_replayed").add(c.journalReplayed);
    registry.counter("serve.preempted").add(c.preempted);
    registry.counter("serve.rejected")
        .add(c.rejectedOverload + c.rejectedClientCap +
             c.rejectedQuarantine + c.rejectedDraining);
    registry.counter("serve.rejected.client_cap").add(c.rejectedClientCap);
    registry.counter("serve.rejected.draining").add(c.rejectedDraining);
    registry.counter("serve.rejected.overload").add(c.rejectedOverload);
    registry.counter("serve.rejected.quarantine")
        .add(c.rejectedQuarantine);
    registry.counter("serve.retries").add(c.retries);
    registry.gauge("serve.queue_depth")
        .set(static_cast<std::int64_t>(c.queueDepth));
    registry.gauge("serve.running")
        .set(static_cast<std::int64_t>(c.running));
    return registryToJson(registry);
}

} // namespace rm
