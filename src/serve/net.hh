#ifndef RM_SERVE_NET_HH
#define RM_SERVE_NET_HH

/**
 * @file
 * TCP shell around SweepService: a POSIX-socket accept loop plus one
 * reader thread per connection, speaking the newline-delimited JSON
 * protocol of serve/protocol.hh. The shell is deliberately thin — all
 * scheduling, caching and robustness live in the service, so tests
 * drive SweepService directly and this layer only moves bytes.
 *
 * Besides job requests, the shell answers three control lines:
 *
 *     {"cmd":"ping","id":"x"}     -> {"id":"x","status":"ok","pong":true}
 *     {"cmd":"metrics","id":"x"}  -> {"id":"x","status":"ok","metrics":{..}}
 *     {"cmd":"drain","id":"x"}    -> {"id":"x","status":"ok","draining":true}
 *                                    (then initiates graceful shutdown)
 *
 * A line that fails to parse or decode answers a "bad-request"
 * response on the same connection instead of killing it — one hostile
 * client line must never take down the daemon or its neighbours.
 */

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace rm {

class SweepService;

/** Listener knobs of one ServeServer. */
struct ServeNetConfig
{
    std::string host = "127.0.0.1";
    /** TCP port; 0 binds an ephemeral port (read it back via port()). */
    int port = 0;
    int backlog = 16;
};

/** The daemon's accept loop; owns the listener and connection threads. */
class ServeServer
{
  public:
    /** Binds and listens immediately (throws FatalError on failure);
     *  the accept loop itself runs in run(). */
    ServeServer(SweepService &service, ServeNetConfig net);
    ~ServeServer();

    ServeServer(const ServeServer &) = delete;
    ServeServer &operator=(const ServeServer &) = delete;

    /** The bound port (resolves port 0 to the kernel's choice). */
    int port() const { return boundPort; }

    /**
     * Accept and serve connections until shutdown() is called (from a
     * signal handler's check loop, another thread, or a client's
     * {"cmd":"drain"}). Drains the service before returning, so every
     * accepted job is answered and the journal is fsync'd.
     */
    void run();

    /** Ask run() to stop; safe to call from any thread, repeatedly. */
    void shutdown() { stopFlag.store(true); }

    /** Connections not yet reaped (observability and tests); the
     *  accept loop reaps hung-up peers between polls. */
    std::size_t liveConnections();

  private:
    struct Connection;

    void serveConnection(const std::shared_ptr<Connection> &conn);
    void handleLine(const std::shared_ptr<Connection> &conn,
                    const std::string &line);
    void reapFinished();

    SweepService &service;
    ServeNetConfig net;
    int listenFd = -1;
    int boundPort = 0;
    std::atomic<bool> stopFlag{false};
    std::mutex connMutex;
    std::vector<std::shared_ptr<Connection>> connections;
    std::vector<std::thread> connThreads;
};

} // namespace rm

#endif // RM_SERVE_NET_HH
