#ifndef RM_OBS_SAMPLER_HH
#define RM_OBS_SAMPLER_HH

/**
 * @file
 * Interval sampler: snapshots a MetricsRegistry every N simulated
 * cycles into an in-memory time-series (one column per flattened
 * metric, one row per sample). Counters and gauges sample as their
 * current value; histograms flatten to <name>.count / <name>.sum /
 * <name>.max. The hot-path cost is one modulo per cycle; a sample
 * itself walks the registry, which is fine at any realistic interval.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace rm {

/** One row of the time-series. */
struct SamplePoint
{
    std::uint64_t cycle = 0;
    std::vector<double> values;  ///< parallel to Sampler::columns()
};

/** Snapshots @p registry every @p interval cycles. */
class Sampler
{
  public:
    Sampler(MetricsRegistry &reg, std::uint64_t interval_cycles)
        : registry(reg), sampleInterval(interval_cycles)
    {}

    /** Call once per simulated cycle. */
    void
    tick(std::uint64_t cycle)
    {
        if (sampleInterval == 0 || cycle % sampleInterval != 0)
            return;
        snapshot(cycle);
    }

    /** Take a sample right now (e.g. a final end-of-run row). */
    void
    snapshot(std::uint64_t cycle)
    {
        SamplePoint point;
        point.cycle = cycle;
        point.values.assign(columnNames.size(), 0.0);
        auto store = [&](const std::string &name, double value) {
            const auto it = columnIndex.find(name);
            std::size_t col;
            if (it == columnIndex.end()) {
                // A metric appeared after earlier samples: open a new
                // column and backfill the old rows with zero.
                col = columnNames.size();
                columnIndex.emplace(name, col);
                columnNames.push_back(name);
                for (SamplePoint &old : series)
                    old.values.push_back(0.0);
                point.values.push_back(value);
            } else {
                col = it->second;
                point.values[col] = value;
            }
        };
        for (const auto &[name, counter] : registry.counters())
            store(name, static_cast<double>(counter.value()));
        for (const auto &[name, gauge] : registry.gauges())
            store(name, static_cast<double>(gauge.value()));
        for (const auto &[name, histogram] : registry.histograms()) {
            store(name + ".count",
                  static_cast<double>(histogram.count()));
            store(name + ".sum", static_cast<double>(histogram.sum()));
            store(name + ".max", static_cast<double>(histogram.max()));
        }
        series.push_back(std::move(point));
    }

    std::uint64_t interval() const { return sampleInterval; }
    const std::vector<std::string> &columns() const { return columnNames; }
    const std::vector<SamplePoint> &samples() const { return series; }

  private:
    MetricsRegistry &registry;
    std::uint64_t sampleInterval;
    std::vector<std::string> columnNames;
    std::map<std::string, std::size_t> columnIndex;
    std::vector<SamplePoint> series;
};

} // namespace rm

#endif // RM_OBS_SAMPLER_HH
