#ifndef RM_OBS_EXPORT_HH
#define RM_OBS_EXPORT_HH

/**
 * @file
 * Artifact exporters for the observability layer:
 *
 *  - SimStats      -> one flat JSON object (machine-readable run stats)
 *  - MetricsRegistry -> JSON (counters/gauges/histograms)
 *  - Sampler       -> CSV time-series (one row per sample)
 *  - IssueTrace    -> Chrome trace_event JSON, loadable directly in
 *                     chrome://tracing or https://ui.perfetto.dev:
 *                     per-warp tracks with issue slices, acquire-wait
 *                     and extended-set-held spans — the paper's Fig. 2
 *                     picture reconstructed from a real run.
 *  - LintReport    -> JSON (structured diagnostics for tooling) or
 *                     SARIF 2.1.0 (static-analysis interchange; loads
 *                     into GitHub code scanning and IDE SARIF viewers).
 *
 * All exporters are pure (input structs -> string); callers own file
 * I/O. See docs/OBSERVABILITY.md for the formats.
 */

#include <string>

#include "analysis/lint.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "obs/sampler.hh"
#include "sim/diagnosis.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace rm {

class Program;

/**
 * Append @p stats as a JSON object to @p writer (for embedding in a
 * larger document). The key set is frozen by a golden-file test; add
 * keys deliberately and update tests/golden/simstats_keys.txt. When a
 * hang diagnosis is attached (stats.hang) it is embedded under the
 * optional "hang" key.
 */
void statsToJson(JsonWriter &writer, const SimStats &stats);

/** @p stats as a standalone JSON document. */
std::string statsToJson(const SimStats &stats);

/**
 * Rebuild a SimStats from a statsToJson document (sweep checkpoint
 * resume). Derived figures (ipc, rates) are not restored. Forward- and
 * backward-compatible by construction: missing keys load as their
 * default values and unknown keys are ignored, so both older and newer
 * checkpoints keep loading. The optional "hang" object round-trips
 * through diagnosisFromJson under the same rules.
 */
SimStats statsFromJson(const JsonValue &value);

/** Append @p diag as a JSON object to @p writer (hang forensics). */
void diagnosisToJson(JsonWriter &writer, const HangDiagnosis &diag);

/** @p diag as a standalone JSON document. */
std::string diagnosisToJson(const HangDiagnosis &diag);

/**
 * Rebuild a HangDiagnosis from a diagnosisToJson document. Missing
 * keys load as defaults and unknown keys are ignored (same
 * compatibility rules as statsFromJson).
 */
HangDiagnosis diagnosisFromJson(const JsonValue &value);

/** Append the registry as a JSON object to @p writer. */
void registryToJson(JsonWriter &writer, const MetricsRegistry &registry);

/** The registry as a standalone JSON document. */
std::string registryToJson(const MetricsRegistry &registry);

/**
 * The sampler's time-series as CSV: header "cycle,<col>,...", one row
 * per sample, raw numbers.
 */
std::string samplerToCsv(const Sampler &sampler);

/**
 * Append @p report as a JSON object to @p writer: kernel name, summary
 * counts, and one entry per diagnostic (check id, severity, block,
 * instruction index, disassembly, message, note). @p program resolves
 * instruction indices to disassembled text.
 */
void lintReportToJson(JsonWriter &writer, const Program &program,
                      const LintReport &report);

/** @p report as a standalone JSON document. */
std::string lintReportToJson(const Program &program,
                             const LintReport &report);

/**
 * @p report as a SARIF 2.1.0 document (one run, tool "rm-lint", the
 * full check catalog as rules). Instruction indices map to 1-based
 * "lines" of the disassembly listing so generic SARIF viewers can
 * anchor findings.
 */
std::string lintReportToSarif(const Program &program,
                              const LintReport &report);

/**
 * The retained trace window as a Chrome trace_event JSON document.
 * Cycles map to microsecond timestamps (1 cycle = 1 us). @p program
 * resolves PCs to disassembled slice names. Spans whose begin was
 * evicted from the ring are dropped; spans still open at the end of
 * the window are closed at the last retained cycle + 1.
 */
std::string chromeTrace(const IssueTrace &trace, const Program &program);

/**
 * Append @p report (obs/profiler.hh) as a JSON object to @p writer:
 * schema version, wall time, thread/span bookkeeping and one entry per
 * phase (name, count, total_ns, max_ns). Span timelines do not
 * round-trip through JSON — use profileChromeTrace for those. The key
 * set is frozen by a golden-file test (tests/golden/profile_keys.txt).
 */
void profileToJson(JsonWriter &writer, const ProfReport &report);

/** @p report as a standalone JSON document. */
std::string profileToJson(const ProfReport &report);

/**
 * Rebuild a ProfReport's aggregate view from a profileToJson document.
 * Same compatibility rules as statsFromJson: missing keys load as
 * defaults, unknown keys (and unknown phase names) are ignored, so
 * older and newer reports keep loading. Span records are not restored.
 */
ProfReport profileFromJson(const JsonValue &value);

/**
 * The report's host-side span timeline as a Chrome trace_event JSON
 * document (chrome://tracing, ui.perfetto.dev). One track per
 * recording thread; slice names are phase names, with the span's arg
 * (SM id, sweep cell index) attached when set. Nanoseconds map to
 * trace microseconds.
 */
std::string profileChromeTrace(const ProfReport &report);

} // namespace rm

#endif // RM_OBS_EXPORT_HH
