#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/errors.hh"

namespace rm {

// --- Writer -------------------------------------------------------------

void
JsonWriter::separate()
{
    if (afterKey) {
        afterKey = false;
        return;
    }
    if (!needComma.empty()) {
        if (needComma.back())
            out << ',';
        needComma.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    out << '{';
    needComma.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    fatalIf(needComma.empty(), "JsonWriter: endObject with no container");
    needComma.pop_back();
    out << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    out << '[';
    needComma.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    fatalIf(needComma.empty(), "JsonWriter: endArray with no container");
    needComma.pop_back();
    out << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    separate();
    out << '"' << escape(name) << "\":";
    afterKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view text)
{
    separate();
    out << '"' << escape(text) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(double number)
{
    separate();
    if (!std::isfinite(number)) {
        // JSON has no Inf/NaN; null keeps the document parseable.
        out << "null";
        return *this;
    }
    // Shortest representation that parses back to the same bits, so
    // JSON round-trips (e.g. the sweep checkpoint) are value-exact.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.15g", number);
    if (std::strtod(buf, nullptr) != number)
        std::snprintf(buf, sizeof(buf), "%.17g", number);
    out << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t number)
{
    separate();
    out << number;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t number)
{
    separate();
    out << number;
    return *this;
}

JsonWriter &
JsonWriter::value(bool flag)
{
    separate();
    out << (flag ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    separate();
    out << "null";
    return *this;
}

std::string
JsonWriter::take()
{
    fatalIf(!needComma.empty(), "JsonWriter: take with open containers");
    return out.str();
}

std::string
JsonWriter::escape(std::string_view text)
{
    std::string escaped;
    escaped.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': escaped += "\\\""; break;
          case '\\': escaped += "\\\\"; break;
          case '\n': escaped += "\\n"; break;
          case '\r': escaped += "\\r"; break;
          case '\t': escaped += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                escaped += buf;
            } else {
                escaped += c;
            }
        }
    }
    return escaped;
}

// --- Parser -------------------------------------------------------------

namespace {

class Parser
{
  public:
    Parser(std::string_view input, int max_depth)
        : text(input), maxDepth(max_depth)
    {}

    JsonValue
    document()
    {
        const JsonValue value = parseValue();
        skipSpace();
        fatalIf(pos != text.size(), "parseJson: trailing garbage at ", pos);
        return value;
    }

  private:
    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    }

    char
    peek()
    {
        skipSpace();
        fatalIf(pos >= text.size(), "parseJson: unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        fatalIf(peek() != c, "parseJson: expected '", c, "' at ", pos);
        ++pos;
    }

    bool
    consumeIf(char c)
    {
        if (peek() == c) {
            ++pos;
            return true;
        }
        return false;
    }

    void
    literal(std::string_view word)
    {
        fatalIf(text.substr(pos, word.size()) != word,
                "parseJson: bad literal at ", pos);
        pos += word.size();
    }

    std::string
    parseString()
    {
        expect('"');
        std::string value;
        while (true) {
            fatalIf(pos >= text.size(), "parseJson: unterminated string");
            const char c = text[pos++];
            if (c == '"')
                return value;
            if (c != '\\') {
                value += c;
                continue;
            }
            fatalIf(pos >= text.size(), "parseJson: unterminated escape");
            const char esc = text[pos++];
            switch (esc) {
              case '"': value += '"'; break;
              case '\\': value += '\\'; break;
              case '/': value += '/'; break;
              case 'b': value += '\b'; break;
              case 'f': value += '\f'; break;
              case 'n': value += '\n'; break;
              case 'r': value += '\r'; break;
              case 't': value += '\t'; break;
              case 'u': {
                fatalIf(pos + 4 > text.size(),
                        "parseJson: short \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code += 10 + h - 'a';
                    else if (h >= 'A' && h <= 'F')
                        code += 10 + h - 'A';
                    else
                        fatal("parseJson: bad \\u escape");
                }
                // Artifacts only ever escape control characters; emit
                // the low byte and leave full UTF-16 out of scope.
                value += static_cast<char>(code & 0xff);
                break;
              }
              default:
                fatal("parseJson: unknown escape '\\", esc, "'");
            }
        }
    }

    JsonValue
    parseValue()
    {
        JsonValue value;
        const char c = peek();
        switch (c) {
          case '{': {
            // Depth-bounded: network input can nest maliciously deep,
            // and each level is a real stack frame here.
            fatalIf(++depth > maxDepth,
                    "parseJson: nesting deeper than ", maxDepth,
                    " at ", pos);
            value.kind = JsonValue::Kind::Object;
            ++pos;
            if (consumeIf('}')) {
                --depth;
                return value;
            }
            do {
                std::string name = parseString();
                expect(':');
                value.members.emplace_back(std::move(name), parseValue());
            } while (consumeIf(','));
            expect('}');
            --depth;
            return value;
          }
          case '[': {
            fatalIf(++depth > maxDepth,
                    "parseJson: nesting deeper than ", maxDepth,
                    " at ", pos);
            value.kind = JsonValue::Kind::Array;
            ++pos;
            if (consumeIf(']')) {
                --depth;
                return value;
            }
            do {
                value.items.push_back(parseValue());
            } while (consumeIf(','));
            expect(']');
            --depth;
            return value;
          }
          case '"':
            value.kind = JsonValue::Kind::String;
            value.string = parseString();
            return value;
          case 't':
            literal("true");
            value.kind = JsonValue::Kind::Bool;
            value.boolean = true;
            return value;
          case 'f':
            literal("false");
            value.kind = JsonValue::Kind::Bool;
            return value;
          case 'n':
            literal("null");
            return value;
          default: {
            const std::size_t start = pos;
            if (text[pos] == '-')
                ++pos;
            while (pos < text.size() &&
                   (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                    text[pos] == '.' || text[pos] == 'e' ||
                    text[pos] == 'E' || text[pos] == '+' ||
                    text[pos] == '-')) {
                ++pos;
            }
            fatalIf(pos == start, "parseJson: unexpected character '", c,
                    "' at ", pos);
            value.kind = JsonValue::Kind::Number;
            try {
                value.number = std::stod(
                    std::string(text.substr(start, pos - start)));
            } catch (const std::exception &) {
                // stod throws on both garbage ("--", "1e") and overflow
                // ("1e999999"); either way the document is malformed.
                fatal("parseJson: bad number at ", start);
            }
            return value;
          }
        }
    }

    std::string_view text;
    std::size_t pos = 0;
    int maxDepth;
    int depth = 0;
};

} // namespace

const JsonValue *
JsonValue::find(std::string_view name) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[key, member] : members) {
        if (key == name)
            return &member;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(std::string_view name) const
{
    const JsonValue *member = find(name);
    fatalIf(!member, "JsonValue: no member '", std::string(name), "'");
    return *member;
}

JsonValue
parseJson(std::string_view text, int max_depth)
{
    return Parser(text, max_depth).document();
}

// --- Typed member accessors ---------------------------------------------

namespace {

/** The member when present, nullptr when absent; JsonSchemaError when
 *  present with a kind other than @p kind. */
const JsonValue *
typedMember(const JsonValue &obj, std::string_view key,
            JsonValue::Kind kind, const char *type_name)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr)
        return nullptr;
    if (v->kind != kind)
        throw JsonSchemaError("json: member '" + std::string(key) +
                              "' is not " + type_name);
    return v;
}

double
integralNumber(const JsonValue &v, std::string_view key)
{
    // Counts serialize as integers; a fractional value here means the
    // document is not what this decoder thinks it is.
    if (v.number != static_cast<double>(static_cast<std::int64_t>(v.number)))
        throw JsonSchemaError("json: member '" + std::string(key) +
                              "' is not an integer");
    return v.number;
}

} // namespace

std::uint64_t
jsonU64(const JsonValue &obj, std::string_view key, std::uint64_t fallback)
{
    const JsonValue *v =
        typedMember(obj, key, JsonValue::Kind::Number, "a number");
    if (v == nullptr)
        return fallback;
    if (v->number < 0)
        throw JsonSchemaError("json: member '" + std::string(key) +
                              "' is negative");
    return static_cast<std::uint64_t>(integralNumber(*v, key));
}

std::int64_t
jsonI64(const JsonValue &obj, std::string_view key, std::int64_t fallback)
{
    const JsonValue *v =
        typedMember(obj, key, JsonValue::Kind::Number, "a number");
    if (v == nullptr)
        return fallback;
    return static_cast<std::int64_t>(integralNumber(*v, key));
}

int
jsonInt(const JsonValue &obj, std::string_view key, int fallback)
{
    const std::int64_t wide = jsonI64(obj, key, fallback);
    // A hostile value like 2^33 must throw, not wrap: truncation here
    // would silently decode a different number than the document said.
    if (wide < std::numeric_limits<int>::min() ||
        wide > std::numeric_limits<int>::max())
        throw JsonSchemaError("json: member '" + std::string(key) +
                              "' overflows int");
    return static_cast<int>(wide);
}

double
jsonNumber(const JsonValue &obj, std::string_view key, double fallback)
{
    const JsonValue *v =
        typedMember(obj, key, JsonValue::Kind::Number, "a number");
    return v ? v->number : fallback;
}

bool
jsonBool(const JsonValue &obj, std::string_view key, bool fallback)
{
    const JsonValue *v =
        typedMember(obj, key, JsonValue::Kind::Bool, "a boolean");
    return v ? v->boolean : fallback;
}

std::string
jsonString(const JsonValue &obj, std::string_view key, std::string fallback)
{
    const JsonValue *v =
        typedMember(obj, key, JsonValue::Kind::String, "a string");
    return v ? v->string : std::move(fallback);
}

const JsonValue *
jsonArray(const JsonValue &obj, std::string_view key)
{
    return typedMember(obj, key, JsonValue::Kind::Array, "an array");
}

const JsonValue *
jsonObject(const JsonValue &obj, std::string_view key)
{
    return typedMember(obj, key, JsonValue::Kind::Object, "an object");
}

void
requireJsonObject(const JsonValue &value, std::string_view what)
{
    if (!value.isObject())
        throw JsonSchemaError("json: " + std::string(what) +
                              " is not an object");
}

} // namespace rm
