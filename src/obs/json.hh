#ifndef RM_OBS_JSON_HH
#define RM_OBS_JSON_HH

/**
 * @file
 * Minimal JSON support for the observability layer: a streaming writer
 * the exporters emit through, and a small recursive-descent parser so
 * tests (and `rm-inspect --pretty`) can round-trip what we emit. Not a
 * general-purpose JSON library — it covers exactly the subset the
 * simulator's artifacts use (objects, arrays, strings, numbers, bools,
 * null) and fails fast on anything malformed.
 */

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/errors.hh"

namespace rm {

/**
 * Streaming JSON writer with automatic comma/key bookkeeping:
 *
 *     JsonWriter w;
 *     w.beginObject().key("cycles").value(42).endObject();
 *     std::string text = w.take();
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Member key; must be followed by a value or container begin. */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view text);
    JsonWriter &value(const char *text) { return value(std::string_view(text)); }
    JsonWriter &value(const std::string &text) { return value(std::string_view(text)); }
    JsonWriter &value(double number);
    JsonWriter &value(std::uint64_t number);
    JsonWriter &value(std::int64_t number);
    JsonWriter &value(int number) { return value(static_cast<std::int64_t>(number)); }
    JsonWriter &value(bool flag);
    JsonWriter &null();

    /** The serialized document (containers must all be closed). */
    std::string take();

    /** Escape @p text per RFC 8259 (quotes not included). */
    static std::string escape(std::string_view text);

  private:
    void separate();

    std::ostringstream out;
    std::vector<bool> needComma;  ///< per open container
    bool afterKey = false;
};

/** Parsed JSON value (tree form). */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> items;  ///< Array elements
    std::vector<std::pair<std::string, JsonValue>> members;  ///< Object

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view name) const;

    /** Member lookup; fatal when absent. */
    const JsonValue &at(std::string_view name) const;

    bool has(std::string_view name) const { return find(name) != nullptr; }
};

/**
 * Parse @p text; throws FatalError on malformed input. Containers may
 * nest at most @p max_depth deep — hostile deeply-nested garbage (the
 * daemon parses bytes straight off the network) fails with a parse
 * error instead of exhausting the stack.
 */
JsonValue parseJson(std::string_view text, int max_depth = 128);

/**
 * A structurally valid JSON document whose fields do not match the
 * schema a decoder expects (wrong-typed member, negative count, ...).
 * Distinct from the parse-level FatalError so callers can report
 * "malformed JSON" and "valid JSON, wrong shape" differently; the
 * message names the offending key.
 */
class JsonSchemaError : public FatalError
{
  public:
    using FatalError::FatalError;
};

/**
 * Typed member accessors with the decoder compatibility contract the
 * artifact loaders (statsFromJson, the serve protocol, ...) share: a
 * *missing* member returns @p fallback (forward compatibility — older
 * producers), but a member that is *present with the wrong JSON type*
 * throws JsonSchemaError naming the key instead of silently decoding a
 * default. jsonU64 additionally rejects negative and non-integral
 * numbers, jsonInt/jsonI64 reject non-integral ones, and jsonInt
 * rejects values outside int's range instead of truncating.
 */
std::uint64_t jsonU64(const JsonValue &obj, std::string_view key,
                      std::uint64_t fallback = 0);
std::int64_t jsonI64(const JsonValue &obj, std::string_view key,
                     std::int64_t fallback = 0);
int jsonInt(const JsonValue &obj, std::string_view key, int fallback = 0);
double jsonNumber(const JsonValue &obj, std::string_view key,
                  double fallback = 0.0);
bool jsonBool(const JsonValue &obj, std::string_view key,
              bool fallback = false);
std::string jsonString(const JsonValue &obj, std::string_view key,
                       std::string fallback = {});

/**
 * Container accessors: nullptr when the member is absent, JsonSchemaError
 * when it is present but not an array / object.
 */
const JsonValue *jsonArray(const JsonValue &obj, std::string_view key);
const JsonValue *jsonObject(const JsonValue &obj, std::string_view key);

/** Throw JsonSchemaError unless @p value is an object (@p what names
 *  the document for the message). */
void requireJsonObject(const JsonValue &value, std::string_view what);

} // namespace rm

#endif // RM_OBS_JSON_HH
