#ifndef RM_OBS_JSON_HH
#define RM_OBS_JSON_HH

/**
 * @file
 * Minimal JSON support for the observability layer: a streaming writer
 * the exporters emit through, and a small recursive-descent parser so
 * tests (and `rm-inspect --pretty`) can round-trip what we emit. Not a
 * general-purpose JSON library — it covers exactly the subset the
 * simulator's artifacts use (objects, arrays, strings, numbers, bools,
 * null) and fails fast on anything malformed.
 */

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rm {

/**
 * Streaming JSON writer with automatic comma/key bookkeeping:
 *
 *     JsonWriter w;
 *     w.beginObject().key("cycles").value(42).endObject();
 *     std::string text = w.take();
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Member key; must be followed by a value or container begin. */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view text);
    JsonWriter &value(const char *text) { return value(std::string_view(text)); }
    JsonWriter &value(const std::string &text) { return value(std::string_view(text)); }
    JsonWriter &value(double number);
    JsonWriter &value(std::uint64_t number);
    JsonWriter &value(std::int64_t number);
    JsonWriter &value(int number) { return value(static_cast<std::int64_t>(number)); }
    JsonWriter &value(bool flag);
    JsonWriter &null();

    /** The serialized document (containers must all be closed). */
    std::string take();

    /** Escape @p text per RFC 8259 (quotes not included). */
    static std::string escape(std::string_view text);

  private:
    void separate();

    std::ostringstream out;
    std::vector<bool> needComma;  ///< per open container
    bool afterKey = false;
};

/** Parsed JSON value (tree form). */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> items;  ///< Array elements
    std::vector<std::pair<std::string, JsonValue>> members;  ///< Object

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view name) const;

    /** Member lookup; fatal when absent. */
    const JsonValue &at(std::string_view name) const;

    bool has(std::string_view name) const { return find(name) != nullptr; }
};

/** Parse @p text; throws FatalError on malformed input. */
JsonValue parseJson(std::string_view text);

} // namespace rm

#endif // RM_OBS_JSON_HH
