#include "obs/report.hh"

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "obs/export.hh"
#include "obs/json.hh"

namespace rm {

BenchReport::BenchReport(std::string bench_name, int argc,
                         char *const *argv)
    : bench(std::move(bench_name))
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) != "--json")
            continue;
        if (i + 1 >= argc) {
            std::cerr << bench << ": --json needs a path\n";
            std::exit(2);
        }
        path = argv[i + 1];
        return;
    }
}

void
BenchReport::addRun(const SimStats &stats, Labels labels, Values values)
{
    records.push_back(
        Record{stats, std::move(labels), std::move(values)});
}

void
BenchReport::addRecord(Labels labels, Values values)
{
    records.push_back(
        Record{std::nullopt, std::move(labels), std::move(values)});
}

void
BenchReport::summary(const std::string &key, double value)
{
    summaries.emplace_back(key, value);
}

void
BenchReport::write()
{
    written = true;
    if (!enabled())
        return;

    JsonWriter w;
    w.beginObject();
    w.key("bench").value(bench);
    w.key("runs").beginArray();
    for (const Record &record : records) {
        w.beginObject();
        if (!record.labels.empty()) {
            w.key("labels").beginObject();
            for (const auto &[key, value] : record.labels)
                w.key(key).value(value);
            w.endObject();
        }
        if (!record.values.empty()) {
            w.key("values").beginObject();
            for (const auto &[key, value] : record.values)
                w.key(key).value(value);
            w.endObject();
        }
        if (record.stats) {
            w.key("stats");
            statsToJson(w, *record.stats);
        }
        w.endObject();
    }
    w.endArray();
    if (!summaries.empty()) {
        w.key("summary").beginObject();
        for (const auto &[key, value] : summaries)
            w.key(key).value(value);
        w.endObject();
    }
    w.endObject();

    std::ofstream file(path);
    if (!file) {
        std::cerr << bench << ": cannot open --json path " << path
                  << "\n";
        std::exit(1);
    }
    file << w.take() << "\n";
    if (!file.good()) {
        std::cerr << bench << ": failed writing " << path << "\n";
        std::exit(1);
    }
}

BenchReport::~BenchReport()
{
    if (!written)
        write();
}

} // namespace rm
