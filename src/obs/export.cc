#include "obs/export.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "isa/disasm.hh"
#include "isa/program.hh"

namespace rm {

void
statsToJson(JsonWriter &w, const SimStats &stats)
{
    w.beginObject();
    w.key("kernel").value(stats.kernelName);
    w.key("allocator").value(stats.allocatorName);
    w.key("cycles").value(stats.cycles);
    w.key("instructions").value(stats.instructions);
    w.key("ipc").value(stats.ipc());
    w.key("ctas_completed").value(stats.ctasCompleted);
    w.key("theoretical_ctas").value(stats.theoreticalCtas);
    w.key("theoretical_warps").value(stats.theoreticalWarps);
    w.key("theoretical_occupancy").value(stats.theoreticalOccupancy);
    w.key("avg_resident_warps").value(stats.avgResidentWarps);
    w.key("acquire_attempts").value(stats.acquireAttempts);
    w.key("acquire_successes").value(stats.acquireSuccesses);
    w.key("acquire_already_held").value(stats.acquireAlreadyHeld);
    w.key("acquire_success_rate").value(stats.acquireSuccessRate());
    w.key("releases").value(stats.releases);
    w.key("issued_slots").value(stats.issuedSlots);
    w.key("idle_scheduler_slots").value(stats.idleSchedulerSlots);
    w.key("stalls").beginObject();
    w.key("scoreboard").value(stats.scoreboardStalls);
    w.key("mem_structural").value(stats.memStructuralStalls);
    w.key("barrier").value(stats.barrierStalls);
    w.key("acquire").value(stats.acquireStalls);
    w.key("resource").value(stats.resourceStalls);
    w.key("no_warp").value(stats.noWarpStalls);
    w.endObject();
    w.key("emergency_spills").value(stats.emergencySpills);
    w.key("lock_acquisitions").value(stats.lockAcquisitions);
    w.key("ext_reg_accesses").value(stats.extRegAccesses);
    w.key("bank_conflicts").value(stats.bankConflicts);
    w.key("deadlocked").value(stats.deadlocked);
    w.key("deadlock_cause").value(deadlockCauseName(stats.deadlockCause));
    w.key("fault_events").value(stats.faultEvents);
    if (stats.hang) {
        w.key("hang");
        diagnosisToJson(w, *stats.hang);
    }
    w.endObject();
}

std::string
statsToJson(const SimStats &stats)
{
    JsonWriter w;
    statsToJson(w, stats);
    return w.take();
}

namespace {

// Decoders use the typed accessors from obs/json.hh: missing members
// keep their defaults so older documents load, but a wrong-typed
// member throws JsonSchemaError — the daemon feeds these decoders
// bytes from the network, and silently default-constructing from
// hostile input would poison the result cache.

/** Elements of an int array member; wrong-typed member or element throws. */
std::vector<int>
intArrayAt(const JsonValue &obj, std::string_view key)
{
    std::vector<int> out;
    if (const JsonValue *v = jsonArray(obj, key)) {
        for (const JsonValue &item : v->items) {
            if (item.kind != JsonValue::Kind::Number)
                throw JsonSchemaError("json: member '" + std::string(key) +
                                      "' has a non-number element");
            out.push_back(static_cast<int>(item.number));
        }
    }
    return out;
}

} // namespace

SimStats
statsFromJson(const JsonValue &value)
{
    requireJsonObject(value, "stats document");
    SimStats s;
    s.kernelName = jsonString(value, "kernel");
    s.allocatorName = jsonString(value, "allocator");
    s.cycles = jsonU64(value, "cycles");
    s.instructions = jsonU64(value, "instructions");
    s.ctasCompleted = jsonU64(value, "ctas_completed");
    s.theoreticalCtas = jsonInt(value, "theoretical_ctas");
    s.theoreticalWarps = jsonInt(value, "theoretical_warps");
    s.theoreticalOccupancy = jsonNumber(value, "theoretical_occupancy");
    s.avgResidentWarps = jsonNumber(value, "avg_resident_warps");
    s.acquireAttempts = jsonU64(value, "acquire_attempts");
    s.acquireSuccesses = jsonU64(value, "acquire_successes");
    s.acquireAlreadyHeld = jsonU64(value, "acquire_already_held");
    s.releases = jsonU64(value, "releases");
    s.issuedSlots = jsonU64(value, "issued_slots");
    s.idleSchedulerSlots = jsonU64(value, "idle_scheduler_slots");
    if (const JsonValue *stalls = jsonObject(value, "stalls")) {
        s.scoreboardStalls = jsonU64(*stalls, "scoreboard");
        s.memStructuralStalls = jsonU64(*stalls, "mem_structural");
        s.barrierStalls = jsonU64(*stalls, "barrier");
        s.acquireStalls = jsonU64(*stalls, "acquire");
        s.resourceStalls = jsonU64(*stalls, "resource");
        s.noWarpStalls = jsonU64(*stalls, "no_warp");
    }
    s.emergencySpills = jsonU64(value, "emergency_spills");
    s.lockAcquisitions = jsonU64(value, "lock_acquisitions");
    s.extRegAccesses = jsonU64(value, "ext_reg_accesses");
    s.bankConflicts = jsonU64(value, "bank_conflicts");
    s.deadlocked = jsonBool(value, "deadlocked");
    if (value.has("deadlock_cause"))
        s.deadlockCause =
            deadlockCauseFromName(jsonString(value, "deadlock_cause"));
    s.faultEvents = jsonU64(value, "fault_events");
    if (const JsonValue *v = jsonObject(value, "hang"))
        s.hang = std::make_shared<const HangDiagnosis>(
            diagnosisFromJson(*v));
    return s;
}

void
diagnosisToJson(JsonWriter &w, const HangDiagnosis &diag)
{
    w.beginObject();
    w.key("kernel").value(diag.kernel);
    w.key("policy").value(diag.policy);
    w.key("sm_id").value(diag.smId);
    w.key("cycle").value(diag.cycle);
    w.key("watchdog_expired").value(diag.watchdogExpired);
    w.key("cause").value(deadlockCauseName(diag.cause));
    w.key("blocked_acquire").value(diag.blockedAcquire);
    w.key("blocked_resource").value(diag.blockedResource);
    w.key("blocked_barrier").value(diag.blockedBarrier);
    w.key("other_waiters").value(diag.otherWaiters);
    w.key("event_queue_depth")
        .value(static_cast<std::uint64_t>(diag.eventQueueDepth));
    w.key("mem_queue_depth")
        .value(static_cast<std::uint64_t>(diag.memQueueDepth));
    w.key("next_event_cycle").value(diag.nextEventCycle);
    w.key("sched_last_issued").beginArray();
    for (const int slot : diag.schedLastIssued)
        w.value(slot);
    w.endArray();
    w.key("srp_sections").value(diag.srpSections);
    w.key("srp_holders").beginArray();
    for (const int slot : diag.srpHolders)
        w.value(slot);
    w.endArray();
    w.key("srp_waiters").beginArray();
    for (const int slot : diag.srpWaiters)
        w.value(slot);
    w.endArray();
    w.key("warps").beginArray();
    for (const WarpSnapshot &warp : diag.warps) {
        w.beginObject();
        w.key("slot").value(warp.slot);
        w.key("cta").value(warp.ctaId);
        w.key("warp_in_cta").value(warp.warpInCta);
        w.key("pc").value(warp.pc);
        w.key("instruction").value(warp.instruction);
        w.key("state").value(warpStateName(warp.state));
        w.key("wait_age").value(warp.waitAge);
        w.key("srp_section").value(warp.srpSection);
        w.key("holds_ext").value(warp.holdsExt);
        w.key("pending_mem").value(warp.pendingMem);
        w.key("pending_writes").value(warp.pendingWrites);
        w.key("instructions").value(warp.instructionsExecuted);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

std::string
diagnosisToJson(const HangDiagnosis &diag)
{
    JsonWriter w;
    diagnosisToJson(w, diag);
    return w.take();
}

HangDiagnosis
diagnosisFromJson(const JsonValue &value)
{
    requireJsonObject(value, "diagnosis document");
    HangDiagnosis d;
    d.kernel = jsonString(value, "kernel");
    d.policy = jsonString(value, "policy");
    d.smId = jsonInt(value, "sm_id");
    d.cycle = jsonU64(value, "cycle");
    d.watchdogExpired = jsonBool(value, "watchdog_expired");
    if (value.has("cause"))
        d.cause = deadlockCauseFromName(jsonString(value, "cause"));
    d.blockedAcquire = jsonInt(value, "blocked_acquire");
    d.blockedResource = jsonInt(value, "blocked_resource");
    d.blockedBarrier = jsonInt(value, "blocked_barrier");
    d.otherWaiters = jsonInt(value, "other_waiters");
    d.eventQueueDepth =
        static_cast<std::size_t>(jsonU64(value, "event_queue_depth"));
    d.memQueueDepth =
        static_cast<std::size_t>(jsonU64(value, "mem_queue_depth"));
    d.nextEventCycle = jsonU64(value, "next_event_cycle");
    d.schedLastIssued = intArrayAt(value, "sched_last_issued");
    d.srpSections = jsonInt(value, "srp_sections", -1);
    d.srpHolders = intArrayAt(value, "srp_holders");
    d.srpWaiters = intArrayAt(value, "srp_waiters");
    if (const JsonValue *v = jsonArray(value, "warps")) {
        for (const JsonValue &entry : v->items) {
            if (!entry.isObject())
                throw JsonSchemaError(
                    "json: member 'warps' has a non-object element");
            WarpSnapshot warp;
            warp.slot = jsonInt(entry, "slot", -1);
            warp.ctaId = jsonInt(entry, "cta", -1);
            warp.warpInCta = jsonInt(entry, "warp_in_cta", -1);
            warp.pc = jsonInt(entry, "pc", -1);
            warp.instruction = jsonString(entry, "instruction");
            warp.state = warpStateFromName(jsonString(entry, "state"));
            warp.waitAge = jsonU64(entry, "wait_age");
            warp.srpSection = jsonInt(entry, "srp_section", -1);
            warp.holdsExt = jsonBool(entry, "holds_ext");
            warp.pendingMem = jsonInt(entry, "pending_mem");
            warp.pendingWrites = jsonInt(entry, "pending_writes");
            warp.instructionsExecuted = jsonU64(entry, "instructions");
            d.warps.push_back(std::move(warp));
        }
    }
    return d;
}

void
registryToJson(JsonWriter &w, const MetricsRegistry &registry)
{
    w.beginObject();
    w.key("counters").beginObject();
    for (const auto &[name, counter] : registry.counters())
        w.key(name).value(counter.value());
    w.endObject();
    w.key("gauges").beginObject();
    for (const auto &[name, gauge] : registry.gauges())
        w.key(name).value(gauge.value());
    w.endObject();
    w.key("histograms").beginObject();
    for (const auto &[name, hist] : registry.histograms()) {
        w.key(name).beginObject();
        w.key("count").value(hist.count());
        w.key("sum").value(hist.sum());
        w.key("min").value(hist.min());
        w.key("max").value(hist.max());
        w.key("mean").value(hist.mean());
        // Sparse bucket list: only non-empty buckets, upper-bound keyed.
        w.key("buckets").beginArray();
        for (int i = 0; i < Histogram::kBuckets; ++i) {
            if (hist.bucketCount(i) == 0)
                continue;
            w.beginObject();
            w.key("le").value(Histogram::bucketUpperBound(i));
            w.key("count").value(hist.bucketCount(i));
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

std::string
registryToJson(const MetricsRegistry &registry)
{
    JsonWriter w;
    registryToJson(w, registry);
    return w.take();
}

std::string
samplerToCsv(const Sampler &sampler)
{
    std::ostringstream os;
    os << "cycle";
    for (const std::string &column : sampler.columns())
        os << ',' << column;
    os << '\n';
    os.precision(12);
    for (const SamplePoint &point : sampler.samples()) {
        os << point.cycle;
        for (const double v : point.values) {
            os << ',';
            // Counters and gauges are integral; print them as such.
            if (v == static_cast<double>(static_cast<long long>(v)))
                os << static_cast<long long>(v);
            else
                os << v;
        }
        os << '\n';
    }
    return os.str();
}

namespace {

/** Disassembly of the instruction a diagnostic points at, or "". */
std::string
diagDisasm(const Program &program, const Diagnostic &d)
{
    if (d.inst < 0 || d.inst >= static_cast<int>(program.code.size()))
        return std::string();
    return disassemble(program.code[d.inst]);
}

} // namespace

void
lintReportToJson(JsonWriter &w, const Program &program,
                 const LintReport &report)
{
    w.beginObject();
    w.key("kernel").value(program.info.name);
    w.key("clean").value(report.clean());
    w.key("errors").value(report.errorCount());
    w.key("warnings").value(report.warningCount());
    w.key("notes").value(report.noteCount());
    w.key("diagnostics").beginArray();
    for (const Diagnostic &d : report.diagnostics) {
        w.beginObject();
        w.key("check").value(d.checkId);
        w.key("severity").value(lintSeverityName(d.severity));
        w.key("block").value(d.block);
        w.key("inst").value(d.inst);
        w.key("disasm").value(diagDisasm(program, d));
        w.key("message").value(d.message);
        if (!d.note.empty())
            w.key("note").value(d.note);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

std::string
lintReportToJson(const Program &program, const LintReport &report)
{
    JsonWriter w;
    lintReportToJson(w, program, report);
    return w.take();
}

std::string
lintReportToSarif(const Program &program, const LintReport &report)
{
    // SARIF "level" has no "note"; SARIF's own "note" level is the
    // closest fit for LintSeverity::Note and maps cleanly back.
    const auto sarifLevel = [](LintSeverity s) {
        switch (s) {
          case LintSeverity::Error: return "error";
          case LintSeverity::Warning: return "warning";
          case LintSeverity::Note: return "note";
        }
        return "none";
    };

    JsonWriter w;
    w.beginObject();
    w.key("$schema").value(
        "https://json.schemastore.org/sarif-2.1.0.json");
    w.key("version").value("2.1.0");
    w.key("runs").beginArray();
    w.beginObject();

    w.key("tool").beginObject();
    w.key("driver").beginObject();
    w.key("name").value("rm-lint");
    w.key("informationUri").value("docs/ANALYSIS.md");
    w.key("rules").beginArray();
    for (const auto &check : lintChecks()) {
        w.beginObject();
        w.key("id").value(check->id());
        w.key("name").value(check->name());
        w.key("shortDescription").beginObject();
        w.key("text").value(check->description());
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    w.endObject();

    w.key("results").beginArray();
    for (const Diagnostic &d : report.diagnostics) {
        w.beginObject();
        w.key("ruleId").value(d.checkId);
        w.key("level").value(sarifLevel(d.severity));
        w.key("message").beginObject();
        std::string text = d.message;
        const std::string disasm = diagDisasm(program, d);
        if (!disasm.empty())
            text += " [" + disasm + "]";
        if (!d.note.empty())
            text += " (" + d.note + ")";
        w.key("text").value(text);
        w.endObject();
        if (d.inst >= 0) {
            w.key("locations").beginArray();
            w.beginObject();
            w.key("physicalLocation").beginObject();
            w.key("artifactLocation").beginObject();
            w.key("uri").value("kernels/" + program.info.name + ".rmasm");
            w.endObject();
            w.key("region").beginObject();
            // Instruction index -> 1-based disassembly line.
            w.key("startLine").value(d.inst + 1);
            w.endObject();
            w.endObject();
            w.endObject();
            w.endArray();
        }
        w.endObject();
    }
    w.endArray();

    w.endObject();
    w.endArray();
    w.endObject();
    return w.take();
}

namespace {

/** Emit the shared fields of one trace_event record. */
void
eventCommon(JsonWriter &w, const char *ph, std::uint64_t ts, int tid,
            const char *cat)
{
    w.key("ph").value(ph);
    w.key("ts").value(ts);
    w.key("pid").value(0);
    w.key("tid").value(tid);
    w.key("cat").value(cat);
}

void
completeEvent(JsonWriter &w, const std::string &name, std::uint64_t start,
              std::uint64_t end, int tid, const char *cat)
{
    w.beginObject();
    w.key("name").value(name);
    eventCommon(w, "X", start, tid, cat);
    w.key("dur").value(end > start ? end - start : std::uint64_t{1});
    w.endObject();
}

void
instantEvent(JsonWriter &w, const std::string &name, std::uint64_t ts,
             int tid, const char *cat)
{
    w.beginObject();
    w.key("name").value(name);
    eventCommon(w, "i", ts, tid, cat);
    w.key("s").value("t");
    w.endObject();
}

} // namespace

std::string
chromeTrace(const IssueTrace &trace, const Program &program)
{
    const std::vector<TraceEvent> events = trace.events();
    const std::uint64_t window_end =
        events.empty() ? 1 : events.back().cycle + 1;

    // Per-warp open spans (cycle they started at, or -1).
    struct WarpSpans
    {
        std::int64_t waitSince = -1;
        std::int64_t heldSince = -1;
    };
    std::map<int, WarpSpans> spans;

    JsonWriter w;
    w.beginObject();
    w.key("displayTimeUnit").value("ms");
    w.key("traceEvents").beginArray();

    // Track naming metadata (pid 0 = the simulated SM).
    {
        w.beginObject();
        w.key("ph").value("M");
        w.key("pid").value(0);
        w.key("name").value("process_name");
        w.key("args").beginObject();
        w.key("name").value("regmutex SM0: " + program.info.name);
        w.endObject();
        w.endObject();
    }
    std::map<int, bool> named;
    auto nameTrack = [&](int tid) {
        if (named[tid])
            return;
        named[tid] = true;
        w.beginObject();
        w.key("ph").value("M");
        w.key("pid").value(0);
        w.key("tid").value(tid);
        w.key("name").value("thread_name");
        w.key("args").beginObject();
        w.key("name").value("warp " + std::to_string(tid));
        w.endObject();
        w.endObject();
        w.beginObject();
        w.key("ph").value("M");
        w.key("pid").value(0);
        w.key("tid").value(tid);
        w.key("name").value("thread_sort_index");
        w.key("args").beginObject();
        w.key("sort_index").value(tid);
        w.endObject();
        w.endObject();
    };

    auto sliceName = [&](const TraceEvent &event) -> std::string {
        if (event.pc >= 0 &&
            event.pc < static_cast<int>(program.code.size())) {
            return disassemble(program.code[event.pc]);
        }
        return IssueTrace::kindName(event.kind);
    };

    for (const TraceEvent &event : events) {
        const int tid = event.warpSlot;
        nameTrack(tid);
        WarpSpans &span = spans[tid];
        switch (event.kind) {
          case TraceKind::Issue:
            completeEvent(w, sliceName(event), event.cycle,
                          event.cycle + 1, tid, "issue");
            break;
          case TraceKind::AcquireBlocked:
            if (span.waitSince < 0)
                span.waitSince = static_cast<std::int64_t>(event.cycle);
            break;
          case TraceKind::AcquireOk:
            if (span.waitSince >= 0) {
                completeEvent(w, "acquire-wait",
                              static_cast<std::uint64_t>(span.waitSince),
                              event.cycle, tid, "srp");
                span.waitSince = -1;
            }
            if (span.heldSince < 0)
                span.heldSince = static_cast<std::int64_t>(event.cycle);
            break;
          case TraceKind::Release:
            if (span.heldSince >= 0) {
                completeEvent(w, "ext-held",
                              static_cast<std::uint64_t>(span.heldSince),
                              event.cycle, tid, "srp");
                span.heldSince = -1;
            }
            break;
          case TraceKind::BarrierWait:
            instantEvent(w, "barrier", event.cycle, tid, "sync");
            break;
          case TraceKind::WarpExit:
            if (span.heldSince >= 0) {
                completeEvent(w, "ext-held",
                              static_cast<std::uint64_t>(span.heldSince),
                              event.cycle, tid, "srp");
                span.heldSince = -1;
            }
            span.waitSince = -1;
            instantEvent(w, "exit", event.cycle, tid, "lifecycle");
            break;
          case TraceKind::CtaLaunch:
            instantEvent(w,
                         "cta-launch #" + std::to_string(event.ctaId),
                         event.cycle, tid, "lifecycle");
            break;
          case TraceKind::CtaRetire:
            instantEvent(w,
                         "cta-retire #" + std::to_string(event.ctaId),
                         event.cycle, tid, "lifecycle");
            break;
          case TraceKind::Snapshot:
            instantEvent(w, "snapshot", event.cycle, tid, "lifecycle");
            break;
          case TraceKind::Restore:
            instantEvent(w, "restore", event.cycle, tid, "lifecycle");
            break;
        }
    }

    // Close spans that never saw their end inside the retained window.
    for (auto &[tid, span] : spans) {
        if (span.waitSince >= 0) {
            completeEvent(w, "acquire-wait",
                          static_cast<std::uint64_t>(span.waitSince),
                          window_end, tid, "srp");
        }
        if (span.heldSince >= 0) {
            completeEvent(w, "ext-held",
                          static_cast<std::uint64_t>(span.heldSince),
                          window_end, tid, "srp");
        }
    }

    w.endArray();
    w.key("otherData").beginObject();
    w.key("kernel").value(program.info.name);
    w.key("events_retained").value(static_cast<std::uint64_t>(trace.size()));
    w.key("events_recorded").value(trace.totalRecorded());
    w.endObject();
    w.endObject();
    return w.take();
}

namespace {

/** Schema version of the profile JSON document. */
constexpr std::uint64_t kProfileSchemaVersion = 1;

} // namespace

void
profileToJson(JsonWriter &w, const ProfReport &report)
{
    w.beginObject();
    w.key("schema_version").value(kProfileSchemaVersion);
    w.key("wall_ns").value(report.wallNs);
    w.key("threads").value(report.threads);
    w.key("span_count").value(static_cast<std::uint64_t>(
        report.spans.size()));
    w.key("dropped_spans").value(report.droppedSpans);
    w.key("phases").beginArray();
    for (const ProfPhaseStats &phase : report.phases) {
        w.beginObject();
        w.key("phase").value(profPhaseName(phase.phase));
        w.key("count").value(phase.count);
        w.key("total_ns").value(phase.totalNs);
        w.key("max_ns").value(phase.maxNs);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

std::string
profileToJson(const ProfReport &report)
{
    JsonWriter w;
    profileToJson(w, report);
    return w.take();
}

ProfReport
profileFromJson(const JsonValue &value)
{
    requireJsonObject(value, "profile document");
    ProfReport report;
    report.wallNs = jsonU64(value, "wall_ns");
    report.threads = jsonInt(value, "threads");
    report.droppedSpans = jsonU64(value, "dropped_spans");
    report.phases.resize(static_cast<std::size_t>(kProfPhaseCount));
    for (int p = 0; p < kProfPhaseCount; ++p)
        report.phases[static_cast<std::size_t>(p)].phase =
            static_cast<ProfPhase>(p);
    if (const JsonValue *phases = jsonArray(value, "phases")) {
        for (const JsonValue &entry : phases->items) {
            if (!entry.isObject())
                throw JsonSchemaError(
                    "json: member 'phases' has a non-object element");
            const ProfPhase phase =
                profPhaseFromName(jsonString(entry, "phase"));
            if (phase == ProfPhase::NumPhases)
                continue; // a newer writer's phase: skip, keep loading
            ProfPhaseStats &out =
                report.phases[static_cast<std::size_t>(phase)];
            out.count = jsonU64(entry, "count");
            out.totalNs = jsonU64(entry, "total_ns");
            out.maxNs = jsonU64(entry, "max_ns");
        }
    }
    return report;
}

std::string
profileChromeTrace(const ProfReport &report)
{
    JsonWriter w;
    w.beginObject();
    w.key("displayTimeUnit").value("ms");
    w.key("traceEvents").beginArray();
    {
        w.beginObject();
        w.key("ph").value("M");
        w.key("pid").value(0);
        w.key("name").value("process_name");
        w.key("args").beginObject();
        w.key("name").value("rm-prof host spans");
        w.endObject();
        w.endObject();
    }
    std::map<std::uint32_t, bool> named;
    for (const ProfSpanRecord &span : report.spans) {
        if (!named[span.thread]) {
            named[span.thread] = true;
            w.beginObject();
            w.key("ph").value("M");
            w.key("pid").value(0);
            w.key("tid").value(static_cast<std::uint64_t>(span.thread));
            w.key("name").value("thread_name");
            w.key("args").beginObject();
            w.key("name").value("host thread " +
                                std::to_string(span.thread));
            w.endObject();
            w.endObject();
        }
        const ProfPhase phase = static_cast<ProfPhase>(span.phase);
        std::string name = profPhaseName(phase);
        if (span.arg >= 0)
            name += " #" + std::to_string(span.arg);
        w.beginObject();
        w.key("ph").value("X");
        w.key("pid").value(0);
        w.key("tid").value(static_cast<std::uint64_t>(span.thread));
        w.key("name").value(name);
        w.key("cat").value("host");
        // trace_event timestamps are microseconds; keep sub-us detail.
        w.key("ts").value(static_cast<double>(span.beginNs) / 1e3);
        w.key("dur").value(
            static_cast<double>(span.endNs - span.beginNs) / 1e3);
        w.endObject();
    }
    w.endArray();
    w.key("otherData").beginObject();
    w.key("wall_ns").value(report.wallNs);
    w.key("threads").value(report.threads);
    w.key("dropped_spans").value(report.droppedSpans);
    w.endObject();
    w.endObject();
    return w.take();
}

} // namespace rm
