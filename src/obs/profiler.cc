#include "obs/profiler.hh"

#include <algorithm>
#include <array>

#include "common/errors.hh"
#include "common/table.hh"

namespace rm {

namespace {

constexpr std::array<const char *, kProfPhaseCount> kPhaseNames = {
    "sm.events",        // SmEvents
    "sm.mem_dispatch",  // SmMemDispatch
    "sm.wake",          // SmWake
    "sm.schedule",      // SmSchedule
    "sm.issue",         // SmIssue
    "sm.acqrel",        // SmAcqRel
    "sm.sanitize",      // SmSanitize
    "gpu.cell_build",   // GpuCellBuild
    "gpu.sm_run",       // GpuSmRun
    "gpu.merge",        // GpuMerge
    "pool.task_run",    // PoolTaskRun
    "pool.task_wait",   // PoolTaskWait
    "sweep.compile",    // SweepCompile
    "sweep.lint",       // SweepLint
    "sweep.sim",        // SweepSim
    "sweep.checkpoint", // SweepCheckpoint
};

} // namespace

const char *
profPhaseName(ProfPhase phase)
{
    const int index = static_cast<int>(phase);
    fatalIf(index < 0 || index >= kProfPhaseCount,
            "profPhaseName: phase out of range: ", index);
    return kPhaseNames[static_cast<std::size_t>(index)];
}

ProfPhase
profPhaseFromName(const std::string &name)
{
    for (int p = 0; p < kProfPhaseCount; ++p) {
        if (name == kPhaseNames[static_cast<std::size_t>(p)])
            return static_cast<ProfPhase>(p);
    }
    return ProfPhase::NumPhases;
}

void
Profiler::enable()
{
    ProfGlobal &global = profGlobal();
    // New session: bump the epoch so every thread's buffer lazily
    // resets on its first record, then open the gate. Requires
    // quiescence (header contract), so no span is in flight here.
    global.epoch.fetch_add(1, std::memory_order_acq_rel);
    global.base = std::chrono::steady_clock::now();
    global.enabledAt = global.base;
    g_profEnabled.store(true, std::memory_order_release);
}

void
Profiler::disable()
{
    g_profEnabled.store(false, std::memory_order_release);
}

ProfReport
Profiler::report()
{
    ProfGlobal &global = profGlobal();
    ProfReport report;
    report.phases.resize(static_cast<std::size_t>(kProfPhaseCount));
    for (int p = 0; p < kProfPhaseCount; ++p)
        report.phases[static_cast<std::size_t>(p)].phase =
            static_cast<ProfPhase>(p);

    const std::uint64_t epoch =
        global.epoch.load(std::memory_order_acquire);
    report.wallNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - global.enabledAt)
            .count());

    std::lock_guard<std::mutex> lock(global.registryMutex);
    for (const auto &buffer : global.buffers) {
        if (buffer->sessionEpoch != epoch)
            continue; // recorded nothing this session
        bool contributed = buffer->droppedSpans > 0;
        for (int p = 0; p < kProfPhaseCount; ++p) {
            const auto index = static_cast<std::size_t>(p);
            ProfPhaseStats &out = report.phases[index];
            out.count += buffer->count[index];
            out.totalNs += buffer->totalNs[index];
            out.maxNs = std::max(out.maxNs, buffer->maxNs[index]);
            contributed = contributed || buffer->count[index] > 0;
        }
        report.spans.insert(report.spans.end(), buffer->spans.begin(),
                            buffer->spans.end());
        report.droppedSpans += buffer->droppedSpans;
        if (contributed)
            ++report.threads;
    }
    std::sort(report.spans.begin(), report.spans.end(),
              [](const ProfSpanRecord &a, const ProfSpanRecord &b) {
                  if (a.beginNs != b.beginNs)
                      return a.beginNs < b.beginNs;
                  if (a.thread != b.thread)
                      return a.thread < b.thread;
                  return a.endNs < b.endNs;
              });
    return report;
}

std::string
profileTable(const ProfReport &report)
{
    Table table({"phase", "count", "total_ms", "avg_us", "max_us",
                 "% wall"});
    for (const ProfPhaseStats &phase : report.phases) {
        if (phase.count == 0)
            continue;
        const double total_ms =
            static_cast<double>(phase.totalNs) / 1e6;
        const double avg_us = static_cast<double>(phase.totalNs) /
                              static_cast<double>(phase.count) / 1e3;
        const double max_us = static_cast<double>(phase.maxNs) / 1e3;
        const double frac =
            report.wallNs == 0
                ? 0.0
                : static_cast<double>(phase.totalNs) /
                      static_cast<double>(report.wallNs);
        Row row;
        row << profPhaseName(phase.phase) << phase.count
            << fixed(total_ms, 2) << fixed(avg_us, 2) << fixed(max_us, 2)
            << percent(frac);
        table.addRow(row.take());
    }
    std::string out = table.toText();
    out += "wall: " + fixed(static_cast<double>(report.wallNs) / 1e6, 2) +
           " ms over " + std::to_string(report.threads) + " thread(s)";
    if (report.droppedSpans > 0) {
        out += "; dropped spans: " + std::to_string(report.droppedSpans);
    }
    out +=
        "\nnote: totals are inclusive; sm.schedule contains sm.issue,\n"
        "which contains sm.acqrel, and pool.task_run contains whatever\n"
        "the task executed (e.g. gpu.sm_run). '% wall' can exceed 100%\n"
        "summed across phases and threads.\n";
    return out;
}

} // namespace rm
