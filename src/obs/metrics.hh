#ifndef RM_OBS_METRICS_HH
#define RM_OBS_METRICS_HH

/**
 * @file
 * Metrics registry for the observability layer: named counters, gauges,
 * and histograms the timing model updates from its issue/stall paths.
 * Everything here is header-only and allocation-free after the first
 * lookup so the SM can cache instrument pointers at construction and
 * pay only a null-check plus an add on the hot path; with no registry
 * attached the simulated cycle counts are bit-identical (metrics never
 * feed back into timing).
 *
 * Naming convention: dot-separated lowercase paths grouped by
 * subsystem, e.g. "stall.scoreboard", "srp.holders",
 * "srp.acquire_wait_cycles" (see docs/OBSERVABILITY.md for the
 * catalog).
 */

#include <cstdint>
#include <limits>
#include <map>
#include <string>

namespace rm {

/** Monotonically increasing event count. */
class Counter
{
  public:
    void add(std::uint64_t n = 1) { total += n; }
    std::uint64_t value() const { return total; }

  private:
    std::uint64_t total = 0;
};

/** Point-in-time level that can move both ways. */
class Gauge
{
  public:
    void set(std::int64_t v) { level = v; }
    void add(std::int64_t n = 1) { level += n; }
    void sub(std::int64_t n = 1) { level -= n; }
    std::int64_t value() const { return level; }

  private:
    std::int64_t level = 0;
};

/**
 * Power-of-two-bucketed latency histogram: bucket i counts observations
 * in [2^(i-1), 2^i), bucket 0 counts zero. 64 buckets cover the full
 * uint64 range, so observe() never clamps.
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 64;

    void
    observe(std::uint64_t v)
    {
        ++buckets[bucketOf(v)];
        ++observations;
        total += v;
        if (v < minimum)
            minimum = v;
        if (v > maximum)
            maximum = v;
    }

    std::uint64_t count() const { return observations; }
    std::uint64_t sum() const { return total; }
    std::uint64_t min() const { return observations ? minimum : 0; }
    std::uint64_t max() const { return maximum; }

    double
    mean() const
    {
        return observations == 0
                   ? 0.0
                   : static_cast<double>(total) / observations;
    }

    std::uint64_t bucketCount(int i) const { return buckets[i]; }

    /** Inclusive upper bound of bucket @p i (for export). */
    static std::uint64_t
    bucketUpperBound(int i)
    {
        if (i == 0)
            return 0;
        if (i >= kBuckets - 1)
            return std::numeric_limits<std::uint64_t>::max();
        return (std::uint64_t{1} << i) - 1;
    }

    static int
    bucketOf(std::uint64_t v)
    {
        int bucket = 0;
        while (v != 0) {
            ++bucket;
            v >>= 1;
        }
        return bucket < kBuckets ? bucket : kBuckets - 1;
    }

  private:
    std::uint64_t buckets[kBuckets] = {};
    std::uint64_t observations = 0;
    std::uint64_t total = 0;
    std::uint64_t minimum = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t maximum = 0;
};

/**
 * Named instruments, created on first use. References returned by the
 * accessors stay valid for the registry's lifetime (std::map nodes are
 * stable), so hot paths should look instruments up once and keep the
 * pointer.
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name) { return counterMap[name]; }
    Gauge &gauge(const std::string &name) { return gaugeMap[name]; }
    Histogram &histogram(const std::string &name)
    {
        return histogramMap[name];
    }

    /** Deterministically ordered (by name) for exports and sampling. */
    const std::map<std::string, Counter> &counters() const
    {
        return counterMap;
    }
    const std::map<std::string, Gauge> &gauges() const { return gaugeMap; }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histogramMap;
    }

    bool
    empty() const
    {
        return counterMap.empty() && gaugeMap.empty() &&
               histogramMap.empty();
    }

  private:
    std::map<std::string, Counter> counterMap;
    std::map<std::string, Gauge> gaugeMap;
    std::map<std::string, Histogram> histogramMap;
};

} // namespace rm

#endif // RM_OBS_METRICS_HH
