#ifndef RM_OBS_PROFILER_HH
#define RM_OBS_PROFILER_HH

/**
 * @file
 * rm-prof: low-overhead scoped-span self-profiling for the simulator's
 * host-side phases. The engine is instrumented with RM_PROF_SCOPE()
 * spans — Sm cycle-loop sub-phases, Gpu per-SM legs, ThreadPool task
 * wait/run, runSweep per-cell legs — and a report merges every
 * thread's measurements into a per-phase attribution plus (for the
 * coarse phases) a Chrome-traceable span timeline.
 *
 * Design constraints, in priority order:
 *
 *  1. Zero behavioral change. The profiler only ever reads monotonic
 *     clocks and writes its own buffers; it never touches simulation
 *     state, so stats stay bit-identical with profiling on, off, or
 *     compiled out (tests/test_profiler.cc enforces this).
 *  2. Negligible cost when runtime-disabled: one relaxed atomic load
 *     and a predictable branch per site. Defining RM_PROFILER_DISABLED
 *     at compile time turns every site into a true no-op.
 *  3. Lock-free recording. Each thread accumulates into its own
 *     buffer (registered once per thread under a mutex, then never
 *     shared); Profiler::report() merges at quiescence.
 *
 * Phases come in two flavors. *Hot* phases run inside the SM cycle
 * loop, millions of times per run — they are aggregated only
 * (count / total / max per thread). *Traced* phases are coarse
 * (per-SM legs, pool tasks, sweep cells) — they additionally append a
 * timestamped span record for timeline export (profileChromeTrace in
 * obs/export.hh), capped per thread so a runaway run cannot exhaust
 * memory (overflow is counted, not silently dropped).
 *
 * Usage:
 *
 *     rm::Profiler::enable();
 *     ... run simulations ...
 *     rm::ProfReport rep = rm::Profiler::report();
 *     std::cout << rm::profileTable(rep);
 *     rm::Profiler::disable();
 *
 * enable()/report()/disable() must be called while no instrumented
 * code is running (i.e. at quiescence between runs); recording itself
 * is safe from any thread at any time.
 *
 * Nesting: spans may nest (SmSchedule contains SmIssue contains
 * SmAcqRel; PoolTaskRun contains whatever the task does). Totals are
 * *inclusive* — a reader derives self-time by subtracting children,
 * and the table in profileTable() documents the containment.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rm {

/** Instrumented host-side phases. Order is the report/export order. */
enum class ProfPhase : int {
    // Hot: Sm cycle-loop sub-phases (aggregate-only).
    SmEvents,       ///< completion-event processing (processEvents)
    SmMemDispatch,  ///< global-memory queue dispatch (dispatchMemQueue)
    SmWake,         ///< waking release-parked warps (wakeParked)
    SmSchedule,     ///< scheduler select + issue (contains SmIssue)
    SmIssue,        ///< one warp's issue/interpret (contains SmAcqRel)
    SmAcqRel,       ///< allocator acquire()/release() calls
    SmSanitize,     ///< epoch register-accounting audit (auditEpoch)
    // Traced: coarse engine/harness legs (aggregate + span records).
    GpuCellBuild,   ///< controlled-run SM cell construction
    GpuSmRun,       ///< one SM's run (or run leg); arg = SM id
    GpuMerge,       ///< per-SM statistics merge (mergeSmStats)
    PoolTaskRun,    ///< worker executing a pool task
    PoolTaskWait,   ///< worker blocked waiting for a task
    SweepCompile,   ///< sweep cell: workload build + policy compile
    SweepLint,      ///< sweep cell: static lint gate
    SweepSim,       ///< sweep cell: simulation (all attempts)
    SweepCheckpoint,///< sweep cell: checkpoint record/flush
    NumPhases
};

inline constexpr int kProfPhaseCount = static_cast<int>(ProfPhase::NumPhases);

/** Stable export name ("sm.events", "sweep.sim", ...). */
const char *profPhaseName(ProfPhase phase);

/** Lookup by export name; returns NumPhases when unknown. */
ProfPhase profPhaseFromName(const std::string &name);

/** True for phases that record timeline spans, not just aggregates. */
constexpr bool
profPhaseTraced(ProfPhase phase)
{
    return static_cast<int>(phase) >=
           static_cast<int>(ProfPhase::GpuCellBuild);
}

/** One recorded span of a traced phase (times relative to enable()). */
struct ProfSpanRecord
{
    std::int32_t phase = 0;   ///< ProfPhase as int
    std::int32_t arg = -1;    ///< site-specific tag (SM id, cell index)
    std::uint32_t thread = 0; ///< profiler thread index (0 = first seen)
    std::uint64_t beginNs = 0;
    std::uint64_t endNs = 0;
};

/** Per-thread recording buffer. Created on first record, never freed. */
struct ProfThreadBuffer
{
    std::uint64_t sessionEpoch = 0; ///< lazily resets on a new session
    std::uint32_t threadIndex = 0;
    std::uint64_t count[kProfPhaseCount] = {};
    std::uint64_t totalNs[kProfPhaseCount] = {};
    std::uint64_t maxNs[kProfPhaseCount] = {};
    std::vector<ProfSpanRecord> spans;
    std::uint64_t droppedSpans = 0;

    /** Per-thread span-record cap; overflow bumps droppedSpans. */
    static constexpr std::size_t kSpanCap = std::size_t{1} << 20;
};

/** Process-wide profiler state. Internal; use Profiler / ProfSpan. */
struct ProfGlobal
{
    std::atomic<bool> enabled{false};
    /** Bumped by enable(); buffers lazily reset when theirs lags. */
    std::atomic<std::uint64_t> epoch{0};
    /** Session origin; span times are nanoseconds since this point. */
    std::chrono::steady_clock::time_point base{};
    std::chrono::steady_clock::time_point enabledAt{};
    std::mutex registryMutex;
    std::vector<std::unique_ptr<ProfThreadBuffer>> buffers;
};

inline ProfGlobal &
profGlobal()
{
    // Intentionally leaked: pool workers can close spans during static
    // teardown (after function-local statics are destroyed), so the
    // profiler state must outlive every other static. Still reachable
    // through this pointer, so leak checkers stay quiet.
    static ProfGlobal *global = new ProfGlobal;
    return *global;
}

/**
 * The hot-path gate. A plain inline atomic (not behind a function-local
 * static) so the disabled check is a single relaxed load + branch.
 */
inline std::atomic<bool> g_profEnabled{false};

inline bool
profilerEnabled()
{
    return g_profEnabled.load(std::memory_order_relaxed);
}

namespace detail {

inline thread_local ProfThreadBuffer *t_profBuffer = nullptr;

/** This thread's buffer; registered with the global list on first use. */
inline ProfThreadBuffer &
profThreadBuffer()
{
    ProfGlobal &global = profGlobal();
    std::lock_guard<std::mutex> lock(global.registryMutex);
    auto owned = std::make_unique<ProfThreadBuffer>();
    owned->threadIndex =
        static_cast<std::uint32_t>(global.buffers.size());
    ProfThreadBuffer *buffer = owned.get();
    global.buffers.push_back(std::move(owned));
    t_profBuffer = buffer;
    return *buffer;
}

inline void
profRecord(ProfPhase phase, int arg,
           std::chrono::steady_clock::time_point begin,
           std::chrono::steady_clock::time_point end)
{
    ProfThreadBuffer *buffer = t_profBuffer;
    if (buffer == nullptr)
        buffer = &profThreadBuffer();

    ProfGlobal &global = profGlobal();
    const std::uint64_t epoch =
        global.epoch.load(std::memory_order_acquire);
    if (buffer->sessionEpoch != epoch) {
        // First record of a new session on this thread: start clean.
        buffer->sessionEpoch = epoch;
        for (int p = 0; p < kProfPhaseCount; ++p) {
            buffer->count[p] = 0;
            buffer->totalNs[p] = 0;
            buffer->maxNs[p] = 0;
        }
        buffer->spans.clear();
        buffer->droppedSpans = 0;
    }

    const int index = static_cast<int>(phase);
    const auto ns = [&](std::chrono::steady_clock::time_point t) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                t - global.base)
                .count());
    };
    const std::uint64_t begin_ns = ns(begin);
    const std::uint64_t end_ns = ns(end);
    const std::uint64_t dur = end_ns - begin_ns;
    ++buffer->count[index];
    buffer->totalNs[index] += dur;
    if (dur > buffer->maxNs[index])
        buffer->maxNs[index] = dur;
    if (profPhaseTraced(phase)) {
        if (buffer->spans.size() < ProfThreadBuffer::kSpanCap) {
            buffer->spans.push_back(ProfSpanRecord{
                static_cast<std::int32_t>(phase),
                static_cast<std::int32_t>(arg), buffer->threadIndex,
                begin_ns, end_ns});
        } else {
            ++buffer->droppedSpans;
        }
    }
}

} // namespace detail

/**
 * RAII span over one phase. Costs one relaxed load when the profiler
 * is disabled; two steady_clock reads plus a thread-local buffer
 * update when enabled. Never throws, never touches simulation state.
 */
class ProfSpan
{
  public:
    explicit ProfSpan(ProfPhase span_phase, int span_arg = -1)
        : phase(span_phase), arg(span_arg)
    {
        if (profilerEnabled()) {
            epoch = profGlobal().epoch.load(std::memory_order_acquire);
            begin = std::chrono::steady_clock::now();
            active = true;
        }
    }

    ProfSpan(const ProfSpan &) = delete;
    ProfSpan &operator=(const ProfSpan &) = delete;

    ~ProfSpan()
    {
        // A span closing in a different session than it opened in is
        // dropped: its begin predates the new session's base (a pool
        // worker can sit in its task-wait span across a disable() /
        // enable() pair), and recording into a disabled profiler would
        // race the next enable().
        if (active && profilerEnabled() &&
            epoch == profGlobal().epoch.load(std::memory_order_acquire))
            detail::profRecord(phase, arg, begin,
                               std::chrono::steady_clock::now());
    }

  private:
    ProfPhase phase;
    int arg;
    std::uint64_t epoch = 0;
    std::chrono::steady_clock::time_point begin{};
    bool active = false;
};

/** Merged per-phase attribution for one phase. */
struct ProfPhaseStats
{
    ProfPhase phase = ProfPhase::NumPhases;
    std::uint64_t count = 0;
    std::uint64_t totalNs = 0;
    std::uint64_t maxNs = 0;
};

/** A full profiling report: per-phase totals plus the span timeline. */
struct ProfReport
{
    /** Wall time from enable() to report(), nanoseconds. */
    std::uint64_t wallNs = 0;
    /** Distinct threads that recorded anything this session. */
    int threads = 0;
    /** Traced spans dropped to the per-thread cap. */
    std::uint64_t droppedSpans = 0;
    /** One entry per ProfPhase, in enum order (zero entries included). */
    std::vector<ProfPhaseStats> phases;
    /** All traced spans, merged and sorted by begin time. */
    std::vector<ProfSpanRecord> spans;
};

/**
 * Session control. All three calls require quiescence: no instrumented
 * code running on any thread. enable() starts a fresh session (prior
 * measurements are discarded lazily, per thread); report() merges every
 * thread's buffer; disable() stops recording but keeps the session's
 * data until the next enable().
 */
class Profiler
{
  public:
    static bool enabled() { return profilerEnabled(); }
    static void enable();
    static void disable();
    static ProfReport report();
};

/** Human-readable per-phase table (common/table.hh format). */
std::string profileTable(const ProfReport &report);

// ---------------------------------------------------------------------
// Instrumentation macro. Compiles to nothing with RM_PROFILER_DISABLED
// so the streaming path can be proven untouched by construction.
// ---------------------------------------------------------------------

#define RM_PROF_CONCAT_IMPL(a, b) a##b
#define RM_PROF_CONCAT(a, b) RM_PROF_CONCAT_IMPL(a, b)

#if defined(RM_PROFILER_DISABLED)
#define RM_PROF_SCOPE(phase) static_cast<void>(0)
#define RM_PROF_SCOPE_ARG(phase, arg) static_cast<void>(0)
#else
#define RM_PROF_SCOPE(phase)                                              \
    const ::rm::ProfSpan RM_PROF_CONCAT(rm_prof_span_, __LINE__)(phase)
#define RM_PROF_SCOPE_ARG(phase, arg)                                     \
    const ::rm::ProfSpan RM_PROF_CONCAT(rm_prof_span_, __LINE__)((phase), \
                                                                 (arg))
#endif

} // namespace rm

#endif // RM_OBS_PROFILER_HH
