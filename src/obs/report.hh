#ifndef RM_OBS_REPORT_HH
#define RM_OBS_REPORT_HH

/**
 * @file
 * Shared machine-readable output for the figure benchmarks: every bench
 * constructs a BenchReport from argv, records the per-workload runs it
 * already computes for its text table, and the report writes one JSON
 * document when (and only when) `--json <path>` was passed. The text
 * output is unchanged, so EXPERIMENTS.md workflows keep working while
 * scripts/run_all_benches.sh collects the JSON artifacts.
 *
 *     int main(int argc, char **argv) {
 *         rm::BenchReport report("fig07_occupancy_boost", argc, argv);
 *         ...
 *         report.addRun(stats, {{"workload", name}},
 *                       {{"cycle_reduction", red}});
 *         report.summary("average_reduction", total / 8.0);
 *         report.write();
 *     }
 */

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/stats.hh"

namespace rm {

/** Collects one benchmark's rows and writes them as JSON. */
class BenchReport
{
  public:
    using Labels = std::vector<std::pair<std::string, std::string>>;
    using Values = std::vector<std::pair<std::string, double>>;

    /**
     * Scans @p argv for `--json <path>`; all other arguments are left
     * for the bench. A missing value or unreadable path fails loudly.
     */
    BenchReport(std::string bench_name, int argc, char *const *argv);

    /** True when `--json` was passed and write() will emit a file. */
    bool enabled() const { return !path.empty(); }

    /** Record one simulated run plus derived labels/values. */
    void addRun(const SimStats &stats, Labels labels = {},
                Values values = {});

    /** Record a row with no SimStats (analysis-only benches). */
    void addRecord(Labels labels, Values values = {});

    /** Top-level scalar (averages, totals). */
    void summary(const std::string &key, double value);

    /** Write the JSON file now; no-op unless enabled. */
    void write();

    /** Writes on destruction if write() was never called. */
    ~BenchReport();

    BenchReport(const BenchReport &) = delete;
    BenchReport &operator=(const BenchReport &) = delete;

  private:
    struct Record
    {
        std::optional<SimStats> stats;
        Labels labels;
        Values values;
    };

    std::string bench;
    std::string path;
    std::vector<Record> records;
    Values summaries;
    bool written = false;
};

} // namespace rm

#endif // RM_OBS_REPORT_HH
