#ifndef RM_FUZZ_MINIMIZE_HH
#define RM_FUZZ_MINIMIZE_HH

/**
 * @file
 * Delta-debugging shrinker for failing fuzz cases. Given a case and
 * the finding signature it produced, minimizeCase() greedily applies
 * structure-reducing mutations — drop a phase, halve trip counts,
 * lower register peaks to their legal floor, collapse config knobs to
 * their defaults, disable or narrow fault windows, halve the snapshot
 * cycle — accepting a candidate only when it (a) stays inside the
 * generator's validity envelope (validateCase), (b) is strictly
 * smaller under caseSize(), and (c) still reproduces the *same*
 * signature through the oracles. The result is the smallest case the
 * move set reaches, suitable for a committed `.repro` file.
 *
 * Probes are bounded (MinimizeOptions::maxProbes) so a pathological
 * case cannot stall a campaign; the original seed is preserved on the
 * shrunk case as provenance.
 */

#include <cstdint>
#include <string>

#include "fuzz/gen.hh"
#include "fuzz/oracles.hh"

namespace rm {

/** Knobs of one minimizeCase() invocation. */
struct MinimizeOptions
{
    /** Oracle selection + planted bug forwarded to every probe. Narrow
     *  this to the failing oracle: probes re-simulate the case, and a
     *  single-oracle probe is ~5x cheaper than a full pass. */
    OracleOptions oracle;
    /** Candidate-evaluation budget across all passes. */
    int maxProbes = 300;
};

/** Outcome of a shrink run. */
struct MinimizeResult
{
    /** The smallest reproducing case found (== the input when no
     *  mutation survived). */
    FuzzCase reduced;
    /** The preserved finding signature. */
    std::string signature;
    /** Accepted shrink steps. */
    int accepted = 0;
    /** Candidate evaluations spent (validity + oracle probes). */
    int probes = 0;
};

/**
 * Structural size of a case: the metric minimization strictly
 * decreases. Counts phases heavily, then per-phase work, kernel and
 * config dimensions (as distance from their defaults), fault-plan
 * complexity and the snapshot cycle.
 */
std::uint64_t caseSize(const FuzzCase &fuzz_case);

/**
 * Shrink @p failing while @p signature still reproduces under
 * @p options. The input is assumed to currently produce the signature;
 * if it does not, the input comes back unreduced.
 */
MinimizeResult minimizeCase(const FuzzCase &failing,
                            const std::string &signature,
                            const MinimizeOptions &options = {});

} // namespace rm

#endif // RM_FUZZ_MINIMIZE_HH
