#include "fuzz/minimize.hh"

#include <algorithm>
#include <vector>

namespace rm {
namespace {

std::uint64_t
windowCost(const FaultWindow &window)
{
    return window.enabled() ? 16 + (window.until - window.from) / 256 : 0;
}

/** All single-step shrink candidates of @p current, most aggressive
 *  first (dropping a phase beats halving its trips). */
std::vector<FuzzCase>
shrinkCandidates(const FuzzCase &current)
{
    std::vector<FuzzCase> out;
    const auto push = [&](FuzzCase candidate) {
        out.push_back(std::move(candidate));
    };
    const KernelSpec &k = current.kernel;
    const int bg = 1 + k.persistent;

    // Drop whole phases.
    if (k.phases.size() > 1) {
        for (std::size_t i = 0; i < k.phases.size(); ++i) {
            FuzzCase c = current;
            c.kernel.phases.erase(c.kernel.phases.begin() +
                                  static_cast<std::ptrdiff_t>(i));
            push(std::move(c));
        }
    }

    // Per-phase reductions.
    for (std::size_t i = 0; i < k.phases.size(); ++i) {
        const PhaseSpec &p = k.phases[i];
        const auto withPhase = [&](auto mutate) {
            FuzzCase c = current;
            mutate(c.kernel.phases[i]);
            push(std::move(c));
        };
        if (p.trips > 1) {
            withPhase([&](PhaseSpec &q) { q.trips = 1; });
            if (p.trips > 2)
                withPhase([&](PhaseSpec &q) { q.trips /= 2; });
        }
        if (p.memTrips > 0) {
            withPhase([&](PhaseSpec &q) { q.memTrips = 0; });
            if (p.memTrips > 1)
                withPhase([&](PhaseSpec &q) { q.memTrips /= 2; });
        }
        if (p.loads > 1)
            withPhase([&](PhaseSpec &q) { q.loads = 1; });
        if (p.aluPerTemp > 0)
            withPhase([&](PhaseSpec &q) { q.aluPerTemp = 0; });
        const int directLoads = p.memTrips > 0 ? 0 : p.loads;
        const int minPeak = bg + 2 + directLoads;
        if (p.peak > minPeak)
            withPhase([&](PhaseSpec &q) { q.peak = minPeak; });
        if (p.useSfu)
            withPhase([&](PhaseSpec &q) { q.useSfu = false; });
        if (p.divergent)
            withPhase([&](PhaseSpec &q) { q.divergent = false; });
        if (p.barrierAfter)
            withPhase([&](PhaseSpec &q) {
                q.barrierAfter = false;
                q.barrierLive = 0;
            });
        if (p.barrierLive > 0)
            withPhase([&](PhaseSpec &q) { q.barrierLive = 0; });
    }

    // Kernel-level reductions. Lowering persistent lowers the
    // background live count, which only relaxes the per-phase floors.
    if (k.persistent > 2) {
        FuzzCase c = current;
        c.kernel.persistent = 2;
        push(std::move(c));
    }
    {
        int floor = bg + 3;
        for (const PhaseSpec &p : k.phases) {
            floor = std::max(floor, p.peak);
            if (p.memTrips > 0)
                floor = std::max(floor, bg + p.loads + 3);
        }
        for (const PhaseSpec &p : k.phases)
            if (p.barrierLive > 0)
                floor = std::max(floor, p.barrierLive + 2);
        if (k.regs > floor) {
            FuzzCase c = current;
            c.kernel.regs = floor;
            push(std::move(c));
        }
    }
    if (k.ctaThreads > 32) {
        FuzzCase c = current;
        c.kernel.ctaThreads = 32;
        push(std::move(c));
        FuzzCase h = current;
        h.kernel.ctaThreads = k.ctaThreads / 2;
        push(std::move(h));
    }
    if (k.gridCtasPerSm > 1) {
        FuzzCase c = current;
        c.kernel.gridCtasPerSm = 1;
        push(std::move(c));
    }
    if (k.sharedBytes > 0) {
        FuzzCase c = current;
        c.kernel.sharedBytes = 0;
        push(std::move(c));
    }
    if (k.scramble) {
        FuzzCase c = current;
        c.kernel.scramble = false;
        push(std::move(c));
    }

    // Config toward the GTX480 defaults.
    const GpuConfig defaults = gtx480Config();
    if (current.config.numSms > 1) {
        FuzzCase c = current;
        c.config.numSms = 1;
        push(std::move(c));
    }
    const auto withConfig = [&](auto mutate) {
        FuzzCase c = current;
        mutate(c.config);
        push(std::move(c));
    };
    if (current.config.schedPolicy != defaults.schedPolicy)
        withConfig([&](GpuConfig &g) { g.schedPolicy = defaults.schedPolicy; });
    if (!current.config.wakeOnRelease)
        withConfig([&](GpuConfig &g) { g.wakeOnRelease = true; });
    if (current.config.regAllocGranularity != defaults.regAllocGranularity)
        withConfig([&](GpuConfig &g) {
            g.regAllocGranularity = defaults.regAllocGranularity;
        });
    if (current.config.globalLatency != defaults.globalLatency)
        withConfig(
            [&](GpuConfig &g) { g.globalLatency = defaults.globalLatency; });
    if (current.config.memIssuePerCycle != defaults.memIssuePerCycle)
        withConfig([&](GpuConfig &g) {
            g.memIssuePerCycle = defaults.memIssuePerCycle;
        });
    if (current.config.maxPendingMemPerWarp != defaults.maxPendingMemPerWarp)
        withConfig([&](GpuConfig &g) {
            g.maxPendingMemPerWarp = defaults.maxPendingMemPerWarp;
        });
    if (current.config.numSchedulers != defaults.numSchedulers)
        withConfig(
            [&](GpuConfig &g) { g.numSchedulers = defaults.numSchedulers; });

    // Fault-plan reductions: disable sub-faults outright, then narrow.
    const FaultPlan &f = current.fault;
    const auto withFault = [&](auto mutate) {
        FuzzCase c = current;
        mutate(c.fault);
        push(std::move(c));
    };
    if (f.denyAcquire.enabled()) {
        withFault([&](FaultPlan &q) { q.denyAcquire = FaultWindow{}; });
        if (f.denyAcquire.until - f.denyAcquire.from > 512)
            withFault([&](FaultPlan &q) {
                q.denyAcquire.until =
                    q.denyAcquire.from +
                    (q.denyAcquire.until - q.denyAcquire.from) / 2;
            });
        if (f.denyAcquireChance != 1.0)
            withFault([&](FaultPlan &q) { q.denyAcquireChance = 1.0; });
    }
    if (f.delayRelease.enabled()) {
        withFault([&](FaultPlan &q) {
            q.delayRelease = FaultWindow{};
            q.releaseDelayCycles = 0;
        });
        if (f.delayRelease.until - f.delayRelease.from > 512)
            withFault([&](FaultPlan &q) {
                q.delayRelease.until =
                    q.delayRelease.from +
                    (q.delayRelease.until - q.delayRelease.from) / 2;
            });
        if (f.releaseDelayCycles > 1)
            withFault([&](FaultPlan &q) {
                q.releaseDelayCycles = q.releaseDelayCycles / 2;
            });
    }
    if (f.shrinkSrpAtCycle > 0) {
        withFault([&](FaultPlan &q) {
            q.shrinkSrpAtCycle = 0;
            q.shrinkSrpSections = 0;
        });
        if (f.shrinkSrpAtCycle > 1)
            withFault(
                [&](FaultPlan &q) { q.shrinkSrpAtCycle /= 2; });
        if (f.shrinkSrpSections > 1)
            withFault([&](FaultPlan &q) { q.shrinkSrpSections = 1; });
    }
    if (f.memSpike.enabled()) {
        withFault([&](FaultPlan &q) {
            q.memSpike = FaultWindow{};
            q.memSpikeFactor = 1;
        });
        if (f.memSpike.until - f.memSpike.from > 512)
            withFault([&](FaultPlan &q) {
                q.memSpike.until =
                    q.memSpike.from +
                    (q.memSpike.until - q.memSpike.from) / 2;
            });
        if (f.memSpikeFactor > 2)
            withFault([&](FaultPlan &q) { q.memSpikeFactor = 2; });
    }
    if (f.corruptStateAtCycle > 1)
        withFault([&](FaultPlan &q) { q.corruptStateAtCycle /= 2; });
    if (f.seed != 0 && !f.denyAcquire.enabled())
        withFault([&](FaultPlan &q) { q.seed = 0; });

    if (current.snapshotCycle > 1) {
        FuzzCase c = current;
        c.snapshotCycle = std::max<std::uint64_t>(1, c.snapshotCycle / 2);
        push(std::move(c));
    }
    return out;
}

bool
reproduces(const FuzzCase &candidate, const std::string &signature,
           const OracleOptions &oracle)
{
    const std::vector<OracleFinding> findings =
        runOracles(candidate, oracle);
    return std::any_of(findings.begin(), findings.end(),
                       [&](const OracleFinding &finding) {
                           return finding.signature == signature;
                       });
}

} // namespace

std::uint64_t
caseSize(const FuzzCase &fc)
{
    const KernelSpec &k = fc.kernel;
    const GpuConfig &g = fc.config;
    const GpuConfig defaults = gtx480Config();
    std::uint64_t size = 0;

    size += k.phases.size() * 1000;
    for (const PhaseSpec &p : k.phases) {
        size += static_cast<std::uint64_t>(p.trips) * 8;
        size += static_cast<std::uint64_t>(p.memTrips) * 8;
        size += static_cast<std::uint64_t>(p.loads) * 4;
        size += static_cast<std::uint64_t>(p.aluPerTemp) * 2;
        size += static_cast<std::uint64_t>(p.peak);
        size += (p.useSfu ? 1 : 0) + (p.divergent ? 1 : 0) +
                (p.barrierAfter ? 1 : 0) + (p.barrierLive > 0 ? 2 : 0);
    }
    size += static_cast<std::uint64_t>(k.regs);
    size += static_cast<std::uint64_t>(k.persistent) * 2;
    size += static_cast<std::uint64_t>(k.ctaThreads / 32) * 4;
    size += static_cast<std::uint64_t>(k.gridCtasPerSm) * 8;
    size += k.sharedBytes > 0 ? 4 : 0;
    size += k.scramble ? 2 : 0;

    size += static_cast<std::uint64_t>(g.numSms) * 16;
    size += static_cast<std::uint64_t>(g.numSchedulers);
    size += (g.schedPolicy != defaults.schedPolicy ? 2 : 0) +
            (g.wakeOnRelease != defaults.wakeOnRelease ? 2 : 0) +
            (g.regAllocGranularity != defaults.regAllocGranularity ? 2 : 0) +
            (g.globalLatency != defaults.globalLatency ? 2 : 0) +
            (g.memIssuePerCycle != defaults.memIssuePerCycle ? 2 : 0) +
            (g.maxPendingMemPerWarp != defaults.maxPendingMemPerWarp ? 2
                                                                     : 0);

    const FaultPlan &f = fc.fault;
    size += windowCost(f.denyAcquire);
    size += f.denyAcquire.enabled() && f.denyAcquireChance != 1.0 ? 2 : 0;
    size += windowCost(f.delayRelease);
    size += f.releaseDelayCycles / 256;
    size += f.shrinkSrpAtCycle > 0
                ? 16 + f.shrinkSrpAtCycle / 256 +
                      static_cast<std::uint64_t>(f.shrinkSrpSections)
                : 0;
    size += windowCost(f.memSpike);
    size += f.memSpike.enabled()
                ? static_cast<std::uint64_t>(f.memSpikeFactor)
                : 0;
    size += f.corruptStateAtCycle > 0 ? 16 + f.corruptStateAtCycle / 256 : 0;
    size += f.seed != 0 ? 1 : 0;

    size += fc.snapshotCycle / 256;
    return size;
}

MinimizeResult
minimizeCase(const FuzzCase &failing, const std::string &signature,
             const MinimizeOptions &options)
{
    MinimizeResult result;
    result.reduced = failing;
    result.signature = signature;

    bool improved = true;
    while (improved && result.probes < options.maxProbes) {
        improved = false;
        const std::uint64_t currentSize = caseSize(result.reduced);
        for (FuzzCase &candidate : shrinkCandidates(result.reduced)) {
            if (result.probes >= options.maxProbes)
                break;
            if (caseSize(candidate) >= currentSize)
                continue;
            if (!validateCase(candidate))
                continue;
            ++result.probes;
            if (!reproduces(candidate, signature, options.oracle))
                continue;
            result.reduced = std::move(candidate);
            ++result.accepted;
            improved = true;
            break;  // re-derive candidates from the smaller case
        }
    }
    return result;
}

} // namespace rm
