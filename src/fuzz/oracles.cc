#include "fuzz/oracles.hh"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/errors.hh"
#include "common/rng.hh"
#include "core/experiment.hh"
#include "core/policy.hh"
#include "isa/asm_parser.hh"
#include "obs/export.hh"
#include "obs/json.hh"
#include "serve/protocol.hh"
#include "sim/diagnosis.hh"
#include "sim/sanitizer.hh"

namespace rm {
namespace {

/// Sanitizer audits run at multiples of RunControl::epochCycles
/// (1024); an injected corruption must be detected within the next
/// audit after it lands. Two epochs of slack absorb the landing cycle
/// itself straddling a boundary.
constexpr std::uint64_t kEpoch = 1024;
constexpr std::uint64_t kDetectSlack = 2 * kEpoch;

std::string
runKey(const RunSpec &spec)
{
    std::ostringstream os;
    os << spec.policy << "/t" << spec.threads
       << (spec.sanitize ? "/S" : "") << (spec.stripCorrupt ? "/C" : "")
       << "/m" << spec.maxCycles;
    return os.str();
}

void
report(std::vector<OracleFinding> &findings, std::string oracle,
       std::string signature, std::string message)
{
    findings.push_back(OracleFinding{std::move(oracle), std::move(signature),
                                     std::move(message)});
}

// ---------------------------------------------------------------------
// differential: cross-policy invariants
// ---------------------------------------------------------------------

void
checkStructural(CaseLab &lab, const std::string &policy,
                const RunOutcome &out, std::vector<OracleFinding> &findings)
{
    if (!out.hasStats)
        return;
    const FuzzCase &fc = lab.fuzzCase();
    const SimStats &s = out.stats;
    const auto flag = [&](const std::string &klass,
                          const std::string &detail) {
        report(findings, "differential",
               "differential:" + klass + ":" + policy,
               describeCase(fc) + " [" + policy + "]: " + detail);
    };

    if (s.acquireSuccesses > s.acquireAttempts)
        flag("acquire-overcount",
             "acquireSuccesses " + std::to_string(s.acquireSuccesses) +
                 " > acquireAttempts " + std::to_string(s.acquireAttempts));
    if (s.theoreticalOccupancy <= 0.0 || s.theoreticalOccupancy > 1.0 + 1e-9)
        flag("occupancy-range", "theoreticalOccupancy " +
                                    std::to_string(s.theoreticalOccupancy) +
                                    " outside (0, 1]");
    if (s.avgResidentWarps < 0.0 ||
        s.avgResidentWarps >
            static_cast<double>(fc.config.maxWarpsPerSm) + 1e-9)
        flag("resident-range", "avgResidentWarps " +
                                   std::to_string(s.avgResidentWarps) +
                                   " outside [0, maxWarpsPerSm]");
    if (s.deadlocked != (s.deadlockCause != DeadlockCause::None))
        flag("deadlock-cause",
             std::string("deadlocked=") + (s.deadlocked ? "true" : "false") +
                 " but cause=" + deadlockCauseName(s.deadlockCause));
    if (!fc.fault.active() && s.faultEvents != 0)
        flag("phantom-faults", "faultEvents " +
                                   std::to_string(s.faultEvents) +
                                   " without a fault plan");
    const auto gridCtas =
        static_cast<std::uint64_t>(lab.program().info.gridCtas);
    if (s.ctasCompleted > gridCtas)
        flag("cta-overrun", "ctasCompleted " +
                                std::to_string(s.ctasCompleted) + " > grid " +
                                std::to_string(gridCtas));
    const std::uint64_t slotCap =
        s.cycles * static_cast<std::uint64_t>(fc.config.numSchedulers) *
        static_cast<std::uint64_t>(fc.config.numSms);
    if (s.issuedSlots > slotCap)
        flag("issue-overrun", "issuedSlots " + std::to_string(s.issuedSlots) +
                                  " > cycles*schedulers*sms " +
                                  std::to_string(slotCap));
    if (s.instructions > s.issuedSlots)
        flag("commit-overrun",
             "instructions " + std::to_string(s.instructions) +
                 " > issuedSlots " + std::to_string(s.issuedSlots));

    // Counters a policy's machinery can never touch.
    const bool regmutexFamily = policy == "regmutex" || policy == "paired";
    if (policy == "baseline" &&
        (s.acquireAttempts || s.acquireSuccesses || s.releases ||
         s.emergencySpills || s.lockAcquisitions || s.extRegAccesses))
        flag("foreign-counters", "baseline run shows policy counters");
    if (policy == "rfv" && (s.acquireAttempts || s.lockAcquisitions))
        flag("foreign-counters", "rfv run shows acquire/lock counters");
    if (regmutexFamily && (s.emergencySpills || s.lockAcquisitions))
        flag("foreign-counters", policy + " run shows rfv/owf counters");
    if (policy == "owf" && s.emergencySpills)
        flag("foreign-counters", "owf run shows emergencySpills");
}

void
differentialOracle(CaseLab &lab, std::vector<OracleFinding> &findings)
{
    const FuzzCase &fc = lab.fuzzCase();
    static const char *const kPolicies[] = {"baseline", "regmutex", "paired",
                                            "owf", "rfv"};
    std::map<std::string, const RunOutcome *> outcomes;
    for (const char *policy : kPolicies) {
        const RunOutcome &out = lab.run(RunSpec{policy, 1, false, false, 0});
        outcomes[policy] = &out;

        if (out.kind == RunOutcome::Kind::CompileError ||
            out.kind == RunOutcome::Kind::Error) {
            report(findings, "differential",
                   std::string("differential:run-error:") + policy,
                   describeCase(fc) + " [" + policy + "]: " + out.message);
            continue;
        }
        checkStructural(lab, policy, out, findings);

        // The baseline statically allocates a register file the case is
        // guaranteed to fit; no injected fault touches its allocator, so
        // it must always retire the grid.
        if (std::string(policy) == "baseline" &&
            out.kind != RunOutcome::Kind::Completed)
            report(findings, "differential",
                   std::string("differential:baseline-wedged:") +
                       (out.kind == RunOutcome::Kind::Deadlocked
                            ? deadlockCauseName(out.stats.deadlockCause)
                            : runOutcomeKindName(out.kind)),
                   describeCase(fc) + ": baseline " +
                       runOutcomeKindName(out.kind) + " " + out.message);

        if (out.kind == RunOutcome::Kind::Completed &&
            out.stats.ctasCompleted !=
                static_cast<std::uint64_t>(lab.program().info.gridCtas))
            report(findings, "differential",
                   std::string("differential:cta-loss:") + policy,
                   describeCase(fc) + " [" + policy + "]: completed with " +
                       std::to_string(out.stats.ctasCompleted) + "/" +
                       std::to_string(lab.program().info.gridCtas) +
                       " CTAs");

        // A policy wedging with no fault plan is a real bug: the
        // compile-time deadlock rule and the allocators' progress
        // guarantees are supposed to make healthy cases terminate.
        if (!fc.fault.active() &&
            (out.kind == RunOutcome::Kind::Deadlocked ||
             out.kind == RunOutcome::Kind::Watchdog))
            report(findings, "differential",
                   std::string("differential:unfaulted-wedge:") + policy +
                       ":" +
                       (out.kind == RunOutcome::Kind::Deadlocked
                            ? deadlockCauseName(out.stats.deadlockCause)
                            : "watchdog"),
                   describeCase(fc) + " [" + policy + "]: " +
                       runOutcomeKindName(out.kind) + " without faults");
    }

    // Committed-instruction conservation. All five policies execute the
    // same per-thread control flow (memory contents are seed-determined,
    // so data-dependent branches resolve identically); RFV runs the
    // original program and must commit exactly the baseline's count,
    // while the RegMutex-compiled variants add acquire/release/spill
    // traffic and can only commit at least as much. Faulted runs are
    // exempt: a deadlock cuts execution short wherever it struck.
    const RunOutcome &base = *outcomes["baseline"];
    if (!fc.fault.active() && base.kind == RunOutcome::Kind::Completed) {
        for (const char *policy : {"regmutex", "paired", "owf", "rfv"}) {
            const RunOutcome &out = *outcomes[policy];
            if (out.kind != RunOutcome::Kind::Completed)
                continue;
            const bool conserved =
                std::string(policy) == "rfv"
                    ? out.stats.instructions == base.stats.instructions
                    : out.stats.instructions >= base.stats.instructions;
            if (!conserved)
                report(findings, "differential",
                       std::string("differential:instr-conservation:") +
                           policy,
                       describeCase(fc) + " [" + policy + "]: committed " +
                           std::to_string(out.stats.instructions) +
                           " vs baseline " +
                           std::to_string(base.stats.instructions));
        }
    }
}

// ---------------------------------------------------------------------
// determinism: 1-thread vs 8-thread FullMachine bit-identity
// ---------------------------------------------------------------------

void
determinismOracle(CaseLab &lab, std::vector<OracleFinding> &findings)
{
    const FuzzCase &fc = lab.fuzzCase();
    const RunOutcome &serial =
        lab.run(RunSpec{fc.policy, 1, false, false, 0});
    const RunOutcome &parallel =
        lab.run(RunSpec{fc.policy, 8, false, false, 0});

    if (serial.kind != parallel.kind) {
        report(findings, "determinism",
               std::string("determinism:outcome-mismatch:") +
                   runOutcomeKindName(serial.kind) + "-vs-" +
                   runOutcomeKindName(parallel.kind),
               describeCase(fc) + ": 1 thread " +
                   runOutcomeKindName(serial.kind) + ", 8 threads " +
                   runOutcomeKindName(parallel.kind));
        return;
    }
    // Which SM's exception surfaces first under SM parallelism is a
    // wall-clock race (thread_pool keeps the first thrown, not the
    // lowest SM id), so throwing outcomes compare by class only.
    if (serial.hasStats && parallel.hasStats &&
        serial.stats != parallel.stats)
        report(findings, "determinism", "determinism:stats-mismatch",
               describeCase(fc) +
                   ": SimStats differ between 1 and 8 SM threads (e.g. "
                   "cycles " +
                   std::to_string(serial.stats.cycles) + " vs " +
                   std::to_string(parallel.stats.cycles) + ")");
}

// ---------------------------------------------------------------------
// preempt-resume: snapshot at the fuzzed cycle, resume, bit-compare
// ---------------------------------------------------------------------

void
preemptResumeOracle(CaseLab &lab, std::vector<OracleFinding> &findings)
{
    const FuzzCase &fc = lab.fuzzCase();
    const RunOutcome &whole = lab.run(RunSpec{fc.policy, 1, false, false, 0});
    const RunOutcome &pre =
        lab.run(RunSpec{fc.policy, 1, false, false, fc.snapshotCycle});

    if (pre.kind != RunOutcome::Kind::Preempted) {
        // The run ended (or threw) before the budget: a bounded run
        // that never hits its bound must be indistinguishable from an
        // unbounded one.
        if (pre.kind != whole.kind)
            report(findings, "preempt-resume",
                   std::string("preempt-resume:bounded-diverges:") +
                       runOutcomeKindName(whole.kind) + "-vs-" +
                       runOutcomeKindName(pre.kind),
                   describeCase(fc) + ": maxCycles=" +
                       std::to_string(fc.snapshotCycle) + " turned " +
                       runOutcomeKindName(whole.kind) + " into " +
                       runOutcomeKindName(pre.kind));
        else if (pre.hasStats && whole.hasStats && pre.stats != whole.stats)
            report(findings, "preempt-resume",
                   "preempt-resume:bounded-perturbs",
                   describeCase(fc) +
                       ": unreached cycle budget changed the stats");
        return;
    }
    if (!pre.snapshot) {
        report(findings, "preempt-resume", "preempt-resume:no-snapshot",
               describeCase(fc) + ": preempted without a snapshot");
        return;
    }

    const RunOutcome resumed = lab.resumeRun(fc.policy, pre.snapshot);
    if (resumed.kind != whole.kind) {
        report(findings, "preempt-resume",
               std::string("preempt-resume:outcome-mismatch:") +
                   runOutcomeKindName(whole.kind) + "-vs-" +
                   runOutcomeKindName(resumed.kind),
               describeCase(fc) + ": uninterrupted " +
                   runOutcomeKindName(whole.kind) + ", resumed " +
                   runOutcomeKindName(resumed.kind) + " " + resumed.message);
        return;
    }
    if (whole.hasStats && resumed.hasStats && resumed.stats != whole.stats)
        report(findings, "preempt-resume", "preempt-resume:stats-mismatch",
               describeCase(fc) + ": restore-then-run != uninterrupted (" +
                   std::to_string(resumed.stats.cycles) + " vs " +
                   std::to_string(whole.stats.cycles) + " cycles)");
}

// ---------------------------------------------------------------------
// sanitize: no false positives, no perturbation, corruption caught
// ---------------------------------------------------------------------

void
sanitizeOracle(CaseLab &lab, std::vector<OracleFinding> &findings)
{
    const FuzzCase &fc = lab.fuzzCase();

    // A) On the corruption-free variant of the plan the audit must be
    //    invisible: same outcome, bit-identical stats, no report.
    const RunOutcome &plain = lab.run(RunSpec{fc.policy, 1, false, true, 0});
    const RunOutcome &audited =
        lab.run(RunSpec{fc.policy, 1, true, true, 0});
    if (audited.kind == RunOutcome::Kind::Sanitizer)
        report(findings, "sanitize", "sanitize:false-positive",
               describeCase(fc) + ": " + audited.message);
    else if (audited.kind != plain.kind)
        report(findings, "sanitize",
               std::string("sanitize:outcome-perturbed:") +
                   runOutcomeKindName(plain.kind) + "-vs-" +
                   runOutcomeKindName(audited.kind),
               describeCase(fc) + ": enabling the sanitizer changed the "
                                  "outcome");
    else if (plain.hasStats && audited.hasStats &&
             plain.stats != audited.stats)
        report(findings, "sanitize", "sanitize:stats-perturbed",
               describeCase(fc) + ": enabling the sanitizer changed the "
                                  "stats");

    // B) With the corruption armed the audit must catch it within one
    //    epoch of landing — if it landed and the SM lived long enough
    //    for an audit to run.
    const std::uint64_t corruptAt = fc.fault.corruptStateAtCycle;
    if (corruptAt == 0)
        return;
    const RunOutcome &armed = lab.run(RunSpec{fc.policy, 1, true, false, 0});
    if (armed.kind == RunOutcome::Kind::Sanitizer) {
        if (armed.sanitizerCycle < corruptAt ||
            armed.sanitizerCycle > corruptAt + kDetectSlack)
            report(findings, "sanitize", "sanitize:late-detection",
                   describeCase(fc) + ": corruption at " +
                       std::to_string(corruptAt) + " detected at " +
                       std::to_string(armed.sanitizerCycle));
        return;
    }
    if (!armed.hasStats || armed.perSm.empty())
        return;
    const SimStats &faultedSm = armed.perSm.front();
    const bool landed = faultedSm.faultEvents >= 1;
    const bool auditHadTime = faultedSm.cycles >= corruptAt + kDetectSlack;
    if (landed && auditHadTime)
        report(findings, "sanitize", "sanitize:missed-corruption",
               describeCase(fc) + ": corruption landed at ~" +
                   std::to_string(corruptAt) + ", SM ran " +
                   std::to_string(faultedSm.cycles) +
                   " cycles, no SanitizerError");
}

// ---------------------------------------------------------------------
// codec: every serialization boundary round-trips
// ---------------------------------------------------------------------

void
codecOracle(CaseLab &lab, std::vector<OracleFinding> &findings)
{
    const FuzzCase &fc = lab.fuzzCase();

    // Snapshot bytes: serialize -> deserialize -> serialize must be the
    // identity on the wire image.
    const RunOutcome &pre =
        lab.run(RunSpec{fc.policy, 1, false, false, fc.snapshotCycle});
    if (pre.kind == RunOutcome::Kind::Preempted && pre.snapshot) {
        const std::string bytes = pre.snapshot->serialize();
        try {
            const GpuSnapshot redecoded = GpuSnapshot::deserialize(bytes);
            std::string bytes2 = redecoded.serialize();
            if (lab.planted() == PlantedBug::CodecDamage && !bytes2.empty())
                bytes2[bytes2.size() / 2] ^= 0x01;
            if (bytes2 != bytes)
                report(findings, "codec", "codec:snapshot-roundtrip",
                       describeCase(fc) +
                           ": re-serialized snapshot differs (" +
                           std::to_string(bytes.size()) + " vs " +
                           std::to_string(bytes2.size()) + " bytes)");
        } catch (const SnapshotError &e) {
            report(findings, "codec", "codec:snapshot-reject",
                   describeCase(fc) +
                       ": own snapshot failed to deserialize: " + e.what());
        }
    }

    // Stats JSON: the sweep checkpoint / serve cache depend on
    // statsFromJson(statsToJson(s)) == s. Hang forensics are
    // deliberately not serialized, so compare without them.
    {
        const RunOutcome &whole =
            lab.run(RunSpec{fc.policy, 1, false, false, 0});
        const RunOutcome &source =
            whole.hasStats ? whole
                           : lab.run(RunSpec{"baseline", 1, false, false, 0});
        if (source.hasStats) {
            SimStats original = source.stats;
            original.hang.reset();
            try {
                const SimStats decoded =
                    statsFromJson(parseJson(statsToJson(original)));
                if (decoded != original)
                    report(findings, "codec", "codec:stats-json",
                           describeCase(fc) +
                               ": SimStats JSON round-trip is lossy");
            } catch (const FatalError &e) {
                report(findings, "codec", "codec:stats-json-reject",
                       describeCase(fc) +
                           ": own stats JSON failed to parse: " + e.what());
            }
        }
    }

    // Asm round-trip, on the generated program and on what the focus
    // policy's compiler actually emits (directives included).
    const auto checkAsm = [&](const Program &program,
                              const std::string &label) {
        try {
            const std::string text = emitProgram(program);
            const std::string text2 = emitProgram(parseProgram(text));
            if (text2 != text)
                report(findings, "codec", "codec:asm-roundtrip:" + label,
                       describeCase(fc) + ": emit->parse->emit differs (" +
                           label + ")");
        } catch (const FatalError &e) {
            report(findings, "codec", "codec:asm-reject:" + label,
                   describeCase(fc) + ": own asm failed to parse (" + label +
                       "): " + e.what());
        }
    };
    checkAsm(lab.program(), "source");
    checkAsm(lab.compiledProgram(fc.policy), "compiled");

    // Serve job lines: a well-formed request round-trips, and seeded
    // bit-flips/truncations of the encoded line either decode or throw
    // a typed FatalError (JsonSchemaError / parse error) — any other
    // exception type is the crash class this oracle exists to catch.
    {
        JobRequest request;
        request.id = "fuzz";
        request.client = "rm-fuzz";
        request.workload = fc.kernel.name;
        request.policy = fc.policy;
        request.arch = fc.arch;
        request.priority = 1;
        request.maxCycles = fc.snapshotCycle;
        const std::string line = encodeJobRequest(request);
        try {
            const JobRequest decoded = decodeJobRequest(parseJson(line));
            if (encodeJobRequest(decoded) != line)
                report(findings, "codec", "codec:job-roundtrip",
                       describeCase(fc) +
                           ": encode->decode->encode differs for job lines");
        } catch (const FatalError &e) {
            report(findings, "codec", "codec:job-reject",
                   describeCase(fc) +
                       ": own job line failed to decode: " + e.what());
        }
        Rng rng(fc.seed ^ 0x6a6f626c696e65ULL);  // "jobline"
        for (int i = 0; i < 48; ++i) {
            std::string mutated = line;
            const auto pos = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(mutated.size()) - 1));
            if (rng.chance(0.5))
                mutated[pos] ^=
                    static_cast<char>(1 << rng.uniformInt(0, 7));
            else
                mutated.resize(pos);
            try {
                decodeJobRequest(parseJson(mutated));
            } catch (const FatalError &) {
                // Typed rejection: exactly the contract.
            } catch (const std::exception &e) {
                report(findings, "codec", "codec:job-decode-crash",
                       describeCase(fc) + ": mutated job line threw " +
                           std::string(e.what()) +
                           " (not a FatalError) at mutation " +
                           std::to_string(i));
            }
        }
    }

    // The repro codec itself: a fuzzer whose repro files don't
    // round-trip can't reproduce its own findings.
    try {
        const FuzzCase decoded = caseFromJson(parseJson(caseToJson(fc)));
        if (caseToJson(decoded) != caseToJson(fc))
            report(findings, "codec", "codec:case-roundtrip",
                   describeCase(fc) + ": FuzzCase JSON round-trip differs");
    } catch (const FatalError &e) {
        report(findings, "codec", "codec:case-reject",
               describeCase(fc) +
                   ": own repro JSON failed to decode: " + e.what());
    }
}

} // namespace

const char *
plantedBugName(PlantedBug bug)
{
    switch (bug) {
    case PlantedBug::None:
        return "none";
    case PlantedBug::StatsDrift:
        return "stats-drift";
    case PlantedBug::ThreadSkew:
        return "thread-skew";
    case PlantedBug::ResumeSkew:
        return "resume-skew";
    case PlantedBug::MissedCorruption:
        return "missed-corruption";
    case PlantedBug::CodecDamage:
        return "codec-damage";
    }
    return "unknown";
}

const char *
runOutcomeKindName(RunOutcome::Kind kind)
{
    switch (kind) {
    case RunOutcome::Kind::Completed:
        return "completed";
    case RunOutcome::Kind::Preempted:
        return "preempted";
    case RunOutcome::Kind::Deadlocked:
        return "deadlocked";
    case RunOutcome::Kind::Watchdog:
        return "watchdog";
    case RunOutcome::Kind::Sanitizer:
        return "sanitizer";
    case RunOutcome::Kind::CompileError:
        return "compile-error";
    case RunOutcome::Kind::Error:
        return "error";
    }
    return "unknown";
}

CaseLab::CaseLab(FuzzCase fuzz_case, PlantedBug planted)
    : theCase(std::move(fuzz_case)), plantedBug(planted)
{}

const Program &
CaseLab::program()
{
    if (!programBuilt) {
        prog = buildCaseProgram(theCase);
        programBuilt = true;
    }
    return prog;
}

const Program &
CaseLab::compiledProgram(const std::string &policy)
{
    auto it = compiled.find(policy);
    if (it == compiled.end()) {
        const PolicySpec &spec = PolicyRegistry::instance().at(policy);
        PolicyCompile result =
            spec.compile(program(), theCase.config, CompileOptions{});
        it = compiled.emplace(policy, std::move(result.program)).first;
    }
    return it->second;
}

const RunOutcome &
CaseLab::run(const RunSpec &spec)
{
    RunSpec normalized = spec;
    // stripCorrupt on a plan without a corruption is the same run;
    // normalize so the memo doesn't simulate it twice.
    if (theCase.fault.corruptStateAtCycle == 0)
        normalized.stripCorrupt = false;
    const std::string key = runKey(normalized);
    auto it = memo.find(key);
    if (it == memo.end())
        it = memo.emplace(key, execute(normalized, nullptr)).first;
    return it->second;
}

RunOutcome
CaseLab::resumeRun(const std::string &policy,
                   const std::shared_ptr<const GpuSnapshot> &snapshot)
{
    RunSpec spec;
    spec.policy = policy;
    return execute(spec, snapshot);
}

RunOutcome
CaseLab::execute(const RunSpec &spec,
                 const std::shared_ptr<const GpuSnapshot> &resume)
{
    RunOutcome out;
    RunOptions options;
    options.gpu.mode = GpuOptions::Mode::FullMachine;
    options.gpu.threads = spec.threads;
    options.gpu.memSeed = 1;
    options.gpu.fault = theCase.fault;
    if (spec.stripCorrupt)
        options.gpu.fault.corruptStateAtCycle = 0;
    options.gpu.faultSm = 0;
    options.gpu.control.maxCycles = spec.maxCycles;
    options.gpu.control.sanitize = spec.sanitize;
    // The planted "missed corruption" bug models a sanitizer that
    // silently stopped auditing.
    if (plantedBug == PlantedBug::MissedCorruption)
        options.gpu.control.sanitize = false;
    options.gpu.resume = resume;

    try {
        PolicyRun run = runPolicy(spec.policy, program(), theCase.config,
                                  options);
        out.stats = run.result.aggregate;
        out.perSm = run.result.perSm;
        out.hasStats = true;
        out.snapshot = run.result.snapshot;
        if (run.result.status == GpuResult::Status::Preempted)
            out.kind = RunOutcome::Kind::Preempted;
        else
            out.kind = out.stats.deadlocked ? RunOutcome::Kind::Deadlocked
                                            : RunOutcome::Kind::Completed;
    } catch (const SanitizerError &e) {
        out.kind = RunOutcome::Kind::Sanitizer;
        out.sanitizerCycle = e.report().cycle;
        out.message = e.what();
    } catch (const SimulationError &e) {
        out.kind = RunOutcome::Kind::Watchdog;
        out.message = e.what();
    } catch (const FatalError &e) {
        out.kind = RunOutcome::Kind::Error;
        out.message = e.what();
    }

    // Planted-bug hooks: each models the symptom its oracle exists to
    // catch, at the narrowest matching run.
    if (out.hasStats) {
        if (plantedBug == PlantedBug::StatsDrift && spec.policy == "rfv" &&
            spec.threads == 1 && !spec.sanitize && spec.maxCycles == 0 &&
            !resume)
            out.stats.instructions += 1;
        if (plantedBug == PlantedBug::ThreadSkew && spec.threads == 8)
            out.stats.cycles += 1;
        if (plantedBug == PlantedBug::ResumeSkew && resume)
            out.stats.cycles += 1;
    }
    return out;
}

const std::vector<Oracle> &
fuzzOracles()
{
    static const std::vector<Oracle> oracles = {
        {"differential",
         "cross-policy invariants over all five registered policies",
         differentialOracle},
        {"determinism", "1-thread vs 8-thread FullMachine bit-identity",
         determinismOracle},
        {"preempt-resume",
         "snapshot at the fuzzed cycle, resume, bit-compare",
         preemptResumeOracle},
        {"sanitize",
         "audit is invisible on healthy runs and catches corruption",
         sanitizeOracle},
        {"codec",
         "snapshot/stats/asm/job/repro codecs round-trip or reject typed",
         codecOracle},
    };
    return oracles;
}

std::vector<OracleFinding>
runOracles(const FuzzCase &fuzz_case, const OracleOptions &options)
{
    for (const std::string &id : options.oracles) {
        const bool known = std::any_of(
            fuzzOracles().begin(), fuzzOracles().end(),
            [&](const Oracle &oracle) { return oracle.id == id; });
        if (!known)
            fatal("unknown fuzz oracle \"", id, "\"");
    }

    CaseLab lab(fuzz_case, options.planted);
    std::vector<OracleFinding> findings;
    for (const Oracle &oracle : fuzzOracles()) {
        if (!options.oracles.empty() &&
            std::find(options.oracles.begin(), options.oracles.end(),
                      oracle.id) == options.oracles.end())
            continue;
        try {
            oracle.run(lab, findings);
        } catch (const std::exception &e) {
            report(findings, oracle.id, oracle.id + ":oracle-exception",
                   describeCase(fuzz_case) + ": oracle threw: " + e.what());
        }
    }
    return findings;
}

const std::vector<PlantedBugInfo> &
plantedBugCatalog()
{
    static const std::vector<PlantedBugInfo> catalog = {
        {PlantedBug::StatsDrift, "stats-drift", "differential"},
        {PlantedBug::ThreadSkew, "thread-skew", "determinism"},
        {PlantedBug::ResumeSkew, "resume-skew", "preempt-resume"},
        {PlantedBug::MissedCorruption, "missed-corruption", "sanitize"},
        {PlantedBug::CodecDamage, "codec-damage", "codec"},
    };
    return catalog;
}

FuzzCase
plantedBugCase(PlantedBug bug)
{
    FuzzCase fc;
    fc.seed = 0x90a57edbULL;  // synthetic provenance marker
    fc.arch = "GTX480";
    fc.config = gtx480Config();
    fc.config.numSms = 2;
    fc.config.watchdogCycles = 150'000;

    KernelSpec &k = fc.kernel;
    k.name = "planted";
    k.regs = 24;
    k.ctaThreads = 64;
    k.gridCtasPerSm = 2;
    k.sharedBytes = 0;
    k.persistent = 3;
    k.scramble = false;
    k.seed = 7;
    PhaseSpec phase;
    phase.trips = 6;
    phase.peak = 16;
    phase.loads = 2;
    phase.memTrips = 2;
    phase.aluPerTemp = 1;
    k.phases = {phase};

    // RFV focus: its corruption fault always lands (the pooled
    // policies decline it on kernels their compiler left untouched).
    fc.policy = "rfv";
    fc.snapshotCycle = 1000;
    if (bug == PlantedBug::MissedCorruption)
        fc.fault.corruptStateAtCycle = 300;
    return fc;
}

} // namespace rm
