#ifndef RM_FUZZ_ORACLES_HH
#define RM_FUZZ_ORACLES_HH

/**
 * @file
 * Oracle registry for the differential fuzzer. An oracle inspects one
 * FuzzCase through a shared CaseLab (which memoizes the expensive
 * policy runs so five oracles don't re-simulate the same spec) and
 * reports findings: each finding carries a *signature* — oracle id plus
 * failure class — that the triage layer (fuzz/triage.hh) dedupes on and
 * the minimizer (fuzz/minimize.hh) preserves while shrinking.
 *
 * The registered oracles check exactly the guarantees the repo already
 * claims elsewhere:
 *
 *  - "differential": cross-policy invariants over all five registered
 *    policies — the baseline at a fitting register file never wedges,
 *    completed runs retire the whole grid, committed instructions are
 *    conserved across policies that execute the same program, and
 *    structural stat bounds (successes <= attempts, occupancy in
 *    (0, 1], fault counters zero without a plan, per-policy
 *    always-zero counters) hold for every outcome.
 *  - "determinism": 1-thread vs 8-thread FullMachine runs bit-compare
 *    equal (SimStats operator==). Throwing runs compare by outcome
 *    class only: which SM's exception surfaces first under SM-level
 *    parallelism is a wall-clock race by design.
 *  - "preempt-resume": preempting the focus policy at the fuzzed
 *    snapshot cycle and resuming reproduces the uninterrupted run
 *    bit-exactly (the PR 5 invariant, here on fuzzed cases).
 *  - "sanitize": the per-epoch register-accounting audit neither
 *    false-positives on healthy fuzzed runs nor perturbs their stats,
 *    and catches an injected state corruption within ~one epoch of it
 *    landing.
 *  - "codec": every serialization boundary round-trips — snapshot
 *    bytes, stats JSON, asm emit->parse, the fuzz repro JSON itself —
 *    and the serve decodeJobRequest survives bit-flipped/truncated job
 *    lines with a typed error, never a crash.
 *
 * The PlantedBug hook seeds one known bug per oracle (stats drift,
 * thread skew, resume skew, a suppressed sanitizer, codec damage) so
 * tests/test_fuzz.cc can prove each oracle actually catches its bug
 * class — a fuzzer whose oracles silently pass everything is worse
 * than no fuzzer.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fuzz/gen.hh"
#include "sim/gpu.hh"
#include "sim/stats.hh"

namespace rm {

/** One oracle violation. */
struct OracleFinding
{
    /** Registered oracle id ("differential", "codec", ...). */
    std::string oracle;
    /** Dedupe key: oracle id + failure class (+ cause/error type). */
    std::string signature;
    /** Human-readable detail (never part of the dedupe identity). */
    std::string message;
};

/**
 * Known bug classes the self-test plants to prove oracle coverage.
 * Each maps to exactly one oracle (plantedBugCatalog()).
 */
enum class PlantedBug {
    None,
    StatsDrift,        ///< perturbed RFV stats -> "differential"
    ThreadSkew,        ///< perturbed 8-thread stats -> "determinism"
    ResumeSkew,        ///< perturbed resumed stats -> "preempt-resume"
    MissedCorruption,  ///< sanitizer suppressed -> "sanitize"
    CodecDamage,       ///< snapshot bytes damaged -> "codec"
};

/** Stable lower-case label ("none", "stats-drift", ...). */
const char *plantedBugName(PlantedBug bug);

/** How one simulation of a case ended. */
struct RunOutcome
{
    enum class Kind {
        Completed,     ///< ran the grid to retirement
        Preempted,     ///< stopped by maxCycles; snapshot captured
        Deadlocked,    ///< declared deadlock (stats carry the cause)
        Watchdog,      ///< watchdog expiry (SimulationError)
        Sanitizer,     ///< sanitizer audit failed (SanitizerError)
        CompileError,  ///< the policy compiler rejected the kernel
        Error,         ///< any other FatalError
    };

    Kind kind = Kind::Completed;
    bool hasStats = false;
    SimStats stats;  ///< valid for Completed / Preempted / Deadlocked
    /** Per-SM breakdown when hasStats (SM 0 is the faulted SM). */
    std::vector<SimStats> perSm;
    /** Audit cycle of a Sanitizer outcome. */
    std::uint64_t sanitizerCycle = 0;
    /** what() of a throwing outcome. */
    std::string message;
    /** Engine snapshot of a Preempted outcome. */
    std::shared_ptr<const GpuSnapshot> snapshot;
};

/** Stable lower-case label ("completed", "watchdog", ...). */
const char *runOutcomeKindName(RunOutcome::Kind kind);

/** Parameters of one memoized case simulation. */
struct RunSpec
{
    std::string policy;
    int threads = 1;
    bool sanitize = false;
    /** Drop corruptStateAtCycle from the fault plan for this run. */
    bool stripCorrupt = false;
    /** Preempt at this simulated cycle (0: run to completion). */
    std::uint64_t maxCycles = 0;
};

/**
 * Shared per-case execution context: builds the program once, memoizes
 * every (policy, threads, sanitize, stripCorrupt, maxCycles) run, and
 * applies the planted bug (if any) at the layer the bug class lives in.
 * All runs use FullMachine mode with faultSm = 0 and the same memory
 * seed, matching the determinism contract the oracles check.
 */
class CaseLab
{
  public:
    CaseLab(FuzzCase fuzz_case, PlantedBug planted = PlantedBug::None);

    const FuzzCase &fuzzCase() const { return theCase; }
    PlantedBug planted() const { return plantedBug; }

    /** The case's program; built on first use. */
    const Program &program();

    /** The program the focus/differential policy actually executes. */
    const Program &compiledProgram(const std::string &policy);

    /** Memoized simulation of @p spec. */
    const RunOutcome &run(const RunSpec &spec);

    /** Resume @p snapshot (from a Preempted run of @p policy) to its
     *  terminal outcome. Not memoized — snapshots are not value keys. */
    RunOutcome resumeRun(const std::string &policy,
                         const std::shared_ptr<const GpuSnapshot> &snapshot);

  private:
    RunOutcome execute(const RunSpec &spec,
                       const std::shared_ptr<const GpuSnapshot> &resume);

    FuzzCase theCase;
    PlantedBug plantedBug;
    bool programBuilt = false;
    Program prog;
    std::map<std::string, Program> compiled;
    std::map<std::string, RunOutcome> memo;
};

/** One registered oracle. */
struct Oracle
{
    std::string id;
    std::string description;
    std::function<void(CaseLab &, std::vector<OracleFinding> &)> run;
};

/** The built-in oracle registry, in execution order. */
const std::vector<Oracle> &fuzzOracles();

/** Oracle selection + planted-bug hook for one runOracles() call. */
struct OracleOptions
{
    /** Oracle ids to run; empty runs all. Unknown ids throw FatalError. */
    std::vector<std::string> oracles;
    PlantedBug planted = PlantedBug::None;
};

/**
 * Run the selected oracles over @p fuzz_case and return every finding.
 * An oracle that itself throws is converted into a finding (signature
 * "<id>:oracle-exception") instead of aborting the campaign.
 */
std::vector<OracleFinding> runOracles(const FuzzCase &fuzz_case,
                                      const OracleOptions &options = {});

/** One self-test entry: a planted bug and the oracle that must see it. */
struct PlantedBugInfo
{
    PlantedBug bug;
    const char *name;    ///< plantedBugName(bug)
    const char *oracle;  ///< oracle id expected to report a finding
};

/** Every planted bug class, one per registered oracle. */
const std::vector<PlantedBugInfo> &plantedBugCatalog();

/**
 * A deterministic case suited to @p bug: long enough to preempt at its
 * snapshot cycle, RFV-focused (whose corruption fault always lands),
 * with a corrupt-only fault plan exactly when the bug class needs one.
 */
FuzzCase plantedBugCase(PlantedBug bug);

} // namespace rm

#endif // RM_FUZZ_ORACLES_HH
