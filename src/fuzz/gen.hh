#ifndef RM_FUZZ_GEN_HH
#define RM_FUZZ_GEN_HH

/**
 * @file
 * Seeded structured case generator for the differential fuzzer. A
 * FuzzCase bundles everything one fuzz iteration needs — a synthetic
 * kernel spec sampled from the PhaseSpec workload space
 * (workloads/generator.hh), a GpuConfig drawn from the supported
 * architecture envelope, a deterministic FaultPlan, a preemption point
 * and a focus policy — and every case is a *pure function of a 64-bit
 * seed*: generateCase(seed) returns bit-identical cases on every
 * platform and build, so any finding reproduces from
 * (kSchemaVersion, seed) alone.
 *
 * Cases are valid by construction: the sampled kernel always satisfies
 * the generator's structural constraints (phase peaks within the
 * register budget, barrier live counts above the background set, one
 * CTA always fits every sampled architecture), so the oracle layer
 * never wastes an iteration on a case the simulator rejects up front.
 * validateCase() re-checks the envelope — the minimizer uses it to
 * discard shrink candidates that left the space, and replay uses it to
 * reject hand-edited repro files that no longer describe a legal case.
 */

#include <cstdint>
#include <string>

#include "sim/config.hh"
#include "sim/fault.hh"
#include "workloads/generator.hh"

namespace rm {

class JsonWriter;
struct JsonValue;

/** One fuzz iteration's complete, self-describing input. */
struct FuzzCase
{
    /**
     * Repro format version. Bump when the case schema (or the sampling
     * envelope semantics a repro relies on) changes incompatibly;
     * caseFromJson rejects unknown versions loudly.
     */
    static constexpr int kSchemaVersion = 1;

    /** Generator seed (provenance; shrunk repros keep the original). */
    std::uint64_t seed = 0;
    /** Architecture label for reports ("GTX480", "half-RF", ...). */
    std::string arch = "GTX480";
    GpuConfig config = gtx480Config();
    /** Synthetic kernel specification (workloads/generator.hh). */
    KernelSpec kernel;
    /** Deterministic fault plan; inactive on roughly half the cases. */
    FaultPlan fault;
    /**
     * Focus policy for the single-policy oracles (determinism,
     * preempt/resume, sanitize): one of the four non-baseline
     * policies. The differential oracle always runs all five.
     */
    std::string policy = "regmutex";
    /** Simulated cycle at which the preempt/resume and snapshot-codec
     *  oracles interrupt the focus policy's run. */
    std::uint64_t snapshotCycle = 1000;
};

/** Deterministically sample the case for @p seed (pure). */
FuzzCase generateCase(std::uint64_t seed);

/**
 * True when @p fuzz_case lies inside the generator's validity
 * envelope (buildKernel would accept the spec and one CTA fits the
 * config under every policy). @p why receives the first violated
 * constraint when non-null.
 */
bool validateCase(const FuzzCase &fuzz_case, std::string *why = nullptr);

/** Build the case's kernel program (buildKernel on the sampled spec). */
Program buildCaseProgram(const FuzzCase &fuzz_case);

/** One-line human summary ("seed=42 arch=GTX480 phases=2 fault=..."). */
std::string describeCase(const FuzzCase &fuzz_case);

/** Append the case as a JSON object to @p writer (repro files). */
void caseToJson(JsonWriter &writer, const FuzzCase &fuzz_case);

/** The case as a standalone JSON document. */
std::string caseToJson(const FuzzCase &fuzz_case);

/**
 * Rebuild a case from a caseToJson document. Unlike the stats loaders
 * this codec is *strict*: a repro must reproduce the exact case, so a
 * missing or wrong-typed member throws JsonSchemaError naming the key
 * instead of defaulting, and an unsupported schema version is
 * rejected.
 */
FuzzCase caseFromJson(const JsonValue &value);

} // namespace rm

#endif // RM_FUZZ_GEN_HH
