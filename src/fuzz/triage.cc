#include "fuzz/triage.hh"

#include <sstream>

#include "obs/json.hh"

namespace rm {
namespace {

std::string
hexSeed(std::uint64_t value)
{
    std::ostringstream os;
    os << "0x" << std::hex << value;
    return os.str();
}

} // namespace

bool
Triage::record(const OracleFinding &finding, const FuzzCase &fuzz_case)
{
    auto it = table.find(finding.signature);
    if (it != table.end()) {
        ++it->second.count;
        return false;
    }
    TriageBucket bucket;
    bucket.signature = finding.signature;
    bucket.oracle = finding.oracle;
    bucket.count = 1;
    bucket.firstSeed = fuzz_case.seed;
    bucket.firstMessage = finding.message;
    bucket.repro = fuzz_case;
    bucket.hasRepro = true;
    table.emplace(finding.signature, std::move(bucket));
    return true;
}

void
Triage::attachRepro(const std::string &signature, const FuzzCase &reduced)
{
    auto it = table.find(signature);
    if (it == table.end())
        return;
    it->second.repro = reduced;
    it->second.hasRepro = true;
}

std::uint64_t
Triage::totalCount() const
{
    std::uint64_t total = 0;
    for (const auto &[signature, bucket] : table)
        total += bucket.count;
    return total;
}

std::string
Triage::toJsonl() const
{
    std::ostringstream out;
    for (const auto &[signature, bucket] : table) {
        JsonWriter w;
        w.beginObject();
        w.key("signature").value(bucket.signature);
        w.key("oracle").value(bucket.oracle);
        w.key("count").value(bucket.count);
        w.key("first_seed").value(hexSeed(bucket.firstSeed));
        w.key("message").value(bucket.firstMessage);
        if (bucket.hasRepro) {
            w.key("case");
            caseToJson(w, bucket.repro);
        }
        w.endObject();
        out << w.take() << '\n';
    }
    return out.str();
}

std::string
reproToJson(const ReproFile &repro)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value(FuzzCase::kSchemaVersion);
    w.key("oracle").value(repro.oracle);
    w.key("signature").value(repro.signature);
    w.key("note").value(repro.note);
    w.key("case");
    caseToJson(w, repro.fuzzCase);
    w.endObject();
    return w.take();
}

ReproFile
reproFromJson(const JsonValue &value)
{
    requireJsonObject(value, "fuzz repro");
    ReproFile repro;
    // The top-level schema gate lives in caseFromJson (the "case"
    // member repeats it); the envelope members are loader-style
    // (missing tolerated) so hand-written corpus notes stay light.
    repro.oracle = jsonString(value, "oracle");
    repro.signature = jsonString(value, "signature");
    repro.note = jsonString(value, "note");
    const JsonValue *fuzzCase = jsonObject(value, "case");
    if (!fuzzCase)
        throw JsonSchemaError("fuzz repro: missing member \"case\"");
    repro.fuzzCase = caseFromJson(*fuzzCase);
    return repro;
}

} // namespace rm
