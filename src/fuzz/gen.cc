#include "fuzz/gen.hh"

#include <algorithm>
#include <charconv>
#include <iomanip>
#include <sstream>
#include <string>

#include "common/errors.hh"
#include "common/rng.hh"
#include "obs/json.hh"

namespace rm {
namespace {

/// Register budget ceiling: roundUp(56, 8) * 256 threads = 14336
/// registers, which fits one CTA even on the half-RF architecture
/// (16384), so every sampled case admits at least one resident CTA
/// under the baseline's static allocation.
constexpr int kMaxRegs = 56;

/// Sampled watchdog budget: far above any healthy generated kernel
/// (tens of thousands of cycles) yet small enough that a case the
/// faults genuinely wedge fails in milliseconds, not minutes.
constexpr long long kFuzzWatchdog = 150'000;

/// Domain separator so generateCase(0) does not mirror Rng's default
/// stream.
constexpr std::uint64_t kGenSalt = 0x66757a7a2d67656eULL;  // "fuzz-gen"

int
roundUp(int value, int granularity)
{
    return (value + granularity - 1) / granularity * granularity;
}

template <typename T>
T
pickOne(Rng &rng, std::initializer_list<T> options)
{
    const auto idx = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(options.size()) - 1));
    return options.begin()[idx];
}

FaultWindow
sampleWindow(Rng &rng)
{
    FaultWindow w;
    w.from = static_cast<std::uint64_t>(rng.uniformInt(0, 5000));
    w.until = w.from + static_cast<std::uint64_t>(rng.uniformInt(500, 20000));
    return w;
}

std::string
hexU64(std::uint64_t value)
{
    std::ostringstream os;
    os << "0x" << std::hex << value;
    return os.str();
}

std::uint64_t
parseHexU64(const std::string &text, std::string_view key)
{
    if (text.size() < 3 || text[0] != '0' || text[1] != 'x')
        throw JsonSchemaError("fuzz repro: member \"" + std::string(key) +
                              "\" is not a 0x-prefixed hex string");
    std::uint64_t value = 0;
    const char *first = text.data() + 2;
    const char *last = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(first, last, value, 16);
    if (ec != std::errc() || ptr != last)
        throw JsonSchemaError("fuzz repro: member \"" + std::string(key) +
                              "\" is not a valid hex u64: " + text);
    return value;
}

// --- Strict member accessors -------------------------------------------
//
// The shared jsonU64/jsonInt helpers default missing members (forward
// compatibility for artifact *loaders*); a repro must instead describe
// the exact case, so absence is a schema error here. Wrong-typed
// members already throw through the shared helpers.

[[noreturn]] void
missingMember(std::string_view what, std::string_view key)
{
    throw JsonSchemaError("fuzz repro: " + std::string(what) +
                          " is missing member \"" + std::string(key) + "\"");
}

std::uint64_t
needU64(const JsonValue &obj, std::string_view what, std::string_view key)
{
    if (!obj.has(key))
        missingMember(what, key);
    return jsonU64(obj, key);
}

std::int64_t
needI64(const JsonValue &obj, std::string_view what, std::string_view key)
{
    if (!obj.has(key))
        missingMember(what, key);
    return jsonI64(obj, key);
}

int
needInt(const JsonValue &obj, std::string_view what, std::string_view key)
{
    if (!obj.has(key))
        missingMember(what, key);
    return jsonInt(obj, key);
}

double
needNumber(const JsonValue &obj, std::string_view what, std::string_view key)
{
    if (!obj.has(key))
        missingMember(what, key);
    return jsonNumber(obj, key);
}

bool
needBool(const JsonValue &obj, std::string_view what, std::string_view key)
{
    if (!obj.has(key))
        missingMember(what, key);
    return jsonBool(obj, key);
}

std::string
needString(const JsonValue &obj, std::string_view what, std::string_view key)
{
    if (!obj.has(key))
        missingMember(what, key);
    return jsonString(obj, key);
}

std::uint64_t
needHexU64(const JsonValue &obj, std::string_view what, std::string_view key)
{
    return parseHexU64(needString(obj, what, key), key);
}

const JsonValue &
needObject(const JsonValue &obj, std::string_view what, std::string_view key)
{
    const JsonValue *member = jsonObject(obj, key);
    if (!member)
        missingMember(what, key);
    return *member;
}

void
configToJson(JsonWriter &w, const GpuConfig &c)
{
    w.beginObject();
    w.key("num_sms").value(c.numSms);
    w.key("max_warps_per_sm").value(c.maxWarpsPerSm);
    w.key("max_ctas_per_sm").value(c.maxCtasPerSm);
    w.key("max_threads_per_sm").value(c.maxThreadsPerSm);
    w.key("registers_per_sm").value(c.registersPerSm);
    w.key("shared_mem_per_sm").value(c.sharedMemPerSm);
    w.key("warp_size").value(c.warpSize);
    w.key("num_schedulers").value(c.numSchedulers);
    w.key("reg_alloc_granularity").value(c.regAllocGranularity);
    w.key("alu_latency").value(c.aluLatency);
    w.key("sfu_latency").value(c.sfuLatency);
    w.key("shared_latency").value(c.sharedLatency);
    w.key("global_latency").value(c.globalLatency);
    w.key("mem_issue_per_cycle").value(c.memIssuePerCycle);
    w.key("max_pending_mem_per_warp").value(c.maxPendingMemPerWarp);
    w.key("rf_banks").value(c.rfBanks);
    w.key("model_bank_conflicts").value(c.modelBankConflicts);
    w.key("sched_policy")
        .value(c.schedPolicy == SchedPolicy::Lrr ? "lrr" : "gto");
    w.key("wake_on_release").value(c.wakeOnRelease);
    w.key("watchdog_cycles")
        .value(static_cast<std::int64_t>(c.watchdogCycles));
    w.endObject();
}

GpuConfig
configFromJson(const JsonValue &obj)
{
    constexpr std::string_view what = "config";
    requireJsonObject(obj, what);
    GpuConfig c;
    c.numSms = needInt(obj, what, "num_sms");
    c.maxWarpsPerSm = needInt(obj, what, "max_warps_per_sm");
    c.maxCtasPerSm = needInt(obj, what, "max_ctas_per_sm");
    c.maxThreadsPerSm = needInt(obj, what, "max_threads_per_sm");
    c.registersPerSm = needInt(obj, what, "registers_per_sm");
    c.sharedMemPerSm = needInt(obj, what, "shared_mem_per_sm");
    c.warpSize = needInt(obj, what, "warp_size");
    c.numSchedulers = needInt(obj, what, "num_schedulers");
    c.regAllocGranularity = needInt(obj, what, "reg_alloc_granularity");
    c.aluLatency = needInt(obj, what, "alu_latency");
    c.sfuLatency = needInt(obj, what, "sfu_latency");
    c.sharedLatency = needInt(obj, what, "shared_latency");
    c.globalLatency = needInt(obj, what, "global_latency");
    c.memIssuePerCycle = needInt(obj, what, "mem_issue_per_cycle");
    c.maxPendingMemPerWarp = needInt(obj, what, "max_pending_mem_per_warp");
    c.rfBanks = needInt(obj, what, "rf_banks");
    c.modelBankConflicts = needBool(obj, what, "model_bank_conflicts");
    const std::string sched = needString(obj, what, "sched_policy");
    if (sched == "gto")
        c.schedPolicy = SchedPolicy::Gto;
    else if (sched == "lrr")
        c.schedPolicy = SchedPolicy::Lrr;
    else
        throw JsonSchemaError("fuzz repro: unknown sched_policy \"" + sched +
                              "\"");
    c.wakeOnRelease = needBool(obj, what, "wake_on_release");
    c.watchdogCycles = needI64(obj, what, "watchdog_cycles");
    return c;
}

void
kernelToJson(JsonWriter &w, const KernelSpec &k)
{
    w.beginObject();
    w.key("name").value(k.name);
    w.key("regs").value(k.regs);
    w.key("cta_threads").value(k.ctaThreads);
    w.key("grid_ctas_per_sm").value(k.gridCtasPerSm);
    w.key("shared_bytes").value(k.sharedBytes);
    w.key("persistent").value(k.persistent);
    w.key("scramble").value(k.scramble);
    w.key("seed").value(hexU64(k.seed));
    w.key("phases").beginArray();
    for (const PhaseSpec &p : k.phases) {
        w.beginObject();
        w.key("trips").value(p.trips);
        w.key("peak").value(p.peak);
        w.key("loads").value(p.loads);
        w.key("mem_trips").value(p.memTrips);
        w.key("alu_per_temp").value(p.aluPerTemp);
        w.key("use_sfu").value(p.useSfu);
        w.key("divergent").value(p.divergent);
        w.key("barrier_after").value(p.barrierAfter);
        w.key("barrier_live").value(p.barrierLive);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

KernelSpec
kernelFromJson(const JsonValue &obj)
{
    constexpr std::string_view what = "kernel";
    requireJsonObject(obj, what);
    KernelSpec k;
    k.name = needString(obj, what, "name");
    k.regs = needInt(obj, what, "regs");
    k.ctaThreads = needInt(obj, what, "cta_threads");
    k.gridCtasPerSm = needInt(obj, what, "grid_ctas_per_sm");
    k.sharedBytes = needInt(obj, what, "shared_bytes");
    k.persistent = needInt(obj, what, "persistent");
    k.scramble = needBool(obj, what, "scramble");
    k.seed = needHexU64(obj, what, "seed");
    const JsonValue *phases = jsonArray(obj, "phases");
    if (!phases)
        missingMember(what, "phases");
    k.phases.clear();
    for (const JsonValue &item : phases->items) {
        requireJsonObject(item, "kernel phase");
        PhaseSpec p;
        p.trips = needInt(item, "phase", "trips");
        p.peak = needInt(item, "phase", "peak");
        p.loads = needInt(item, "phase", "loads");
        p.memTrips = needInt(item, "phase", "mem_trips");
        p.aluPerTemp = needInt(item, "phase", "alu_per_temp");
        p.useSfu = needBool(item, "phase", "use_sfu");
        p.divergent = needBool(item, "phase", "divergent");
        p.barrierAfter = needBool(item, "phase", "barrier_after");
        p.barrierLive = needInt(item, "phase", "barrier_live");
        k.phases.push_back(p);
    }
    return k;
}

void
faultToJson(JsonWriter &w, const FaultPlan &f)
{
    w.beginObject();
    w.key("seed").value(hexU64(f.seed));
    w.key("deny_from").value(f.denyAcquire.from);
    w.key("deny_until").value(f.denyAcquire.until);
    w.key("deny_chance").value(f.denyAcquireChance);
    w.key("delay_from").value(f.delayRelease.from);
    w.key("delay_until").value(f.delayRelease.until);
    w.key("release_delay").value(f.releaseDelayCycles);
    w.key("shrink_at").value(f.shrinkSrpAtCycle);
    w.key("shrink_sections").value(f.shrinkSrpSections);
    w.key("spike_from").value(f.memSpike.from);
    w.key("spike_until").value(f.memSpike.until);
    w.key("spike_factor").value(f.memSpikeFactor);
    w.key("corrupt_at").value(f.corruptStateAtCycle);
    w.endObject();
}

FaultPlan
faultFromJson(const JsonValue &obj)
{
    constexpr std::string_view what = "fault";
    requireJsonObject(obj, what);
    FaultPlan f;
    f.seed = needHexU64(obj, what, "seed");
    f.denyAcquire.from = needU64(obj, what, "deny_from");
    f.denyAcquire.until = needU64(obj, what, "deny_until");
    f.denyAcquireChance = needNumber(obj, what, "deny_chance");
    f.delayRelease.from = needU64(obj, what, "delay_from");
    f.delayRelease.until = needU64(obj, what, "delay_until");
    f.releaseDelayCycles = needU64(obj, what, "release_delay");
    f.shrinkSrpAtCycle = needU64(obj, what, "shrink_at");
    f.shrinkSrpSections = needInt(obj, what, "shrink_sections");
    f.memSpike.from = needU64(obj, what, "spike_from");
    f.memSpike.until = needU64(obj, what, "spike_until");
    f.memSpikeFactor = needInt(obj, what, "spike_factor");
    f.corruptStateAtCycle = needU64(obj, what, "corrupt_at");
    return f;
}

} // namespace

FuzzCase
generateCase(std::uint64_t seed)
{
    Rng rng(seed ^ kGenSalt);
    FuzzCase fc;
    fc.seed = seed;

    // --- Architecture + config envelope -------------------------------
    switch (rng.uniformInt(0, 4)) {
    case 0:
        fc.arch = "GTX480";
        fc.config = gtx480Config();
        break;
    case 1:
        fc.arch = "half-RF";
        fc.config = halfRegisterFile(gtx480Config());
        break;
    case 2:
        fc.arch = "Kepler";
        fc.config = keplerConfig();
        break;
    case 3:
        fc.arch = "Maxwell";
        fc.config = maxwellConfig();
        break;
    default:
        fc.arch = "Volta";
        fc.config = voltaConfig();
        break;
    }
    fc.config.numSms = static_cast<int>(rng.uniformInt(1, 3));
    fc.config.numSchedulers = pickOne(rng, {1, 2, 4});
    fc.config.schedPolicy =
        rng.chance(0.3) ? SchedPolicy::Lrr : SchedPolicy::Gto;
    fc.config.wakeOnRelease = !rng.chance(0.2);
    fc.config.regAllocGranularity = pickOne(rng, {2, 4, 8});
    fc.config.globalLatency = pickOne(rng, {100, 200, 400, 600});
    fc.config.memIssuePerCycle = pickOne(rng, {1, 2});
    fc.config.maxPendingMemPerWarp = pickOne(rng, {2, 4, 6});
    fc.config.watchdogCycles = kFuzzWatchdog;

    // --- Kernel shape ---------------------------------------------------
    KernelSpec &k = fc.kernel;
    {
        std::ostringstream name;
        name << "fuzz-" << std::hex << std::setw(16) << std::setfill('0')
             << seed;
        k.name = name.str();
    }
    k.persistent = static_cast<int>(rng.uniformInt(2, 5));
    const int bg = 1 + k.persistent;
    k.ctaThreads = 32 << rng.uniformInt(0, 3);
    k.gridCtasPerSm = static_cast<int>(rng.uniformInt(1, 3));
    k.sharedBytes = pickOne(rng, {0, 0, 512, 2048});
    k.scramble = rng.chance(0.5);
    k.seed = rng.next();
    k.phases.clear();
    const int numPhases = static_cast<int>(rng.uniformInt(1, 3));
    int maxPeak = 0;
    int poolFloor = bg + 3;
    for (int i = 0; i < numPhases; ++i) {
        PhaseSpec p;
        p.trips = static_cast<int>(rng.uniformInt(1, 4));
        p.memTrips =
            rng.chance(0.4) ? 0 : static_cast<int>(rng.uniformInt(1, 3));
        p.loads = static_cast<int>(rng.uniformInt(1, 3));
        p.aluPerTemp = static_cast<int>(rng.uniformInt(0, 2));
        p.useSfu = rng.chance(0.25);
        p.divergent = rng.chance(0.3);
        p.barrierAfter = rng.chance(0.3);
        const int directLoads = p.memTrips > 0 ? 0 : p.loads;
        const int minPeak = bg + 2 + directLoads;
        p.peak = std::min(kMaxRegs,
                          minPeak + static_cast<int>(rng.uniformInt(0, 12)));
        maxPeak = std::max(maxPeak, p.peak);
        // Memory-subloop phases allocate the inner counter, an address
        // and the in-flight loads on top of the gathered values — a
        // transient pool demand that peak (which only sizes the temp
        // burst) does not see.  Direct-load phases are covered by the
        // peak >= bg + 1 + loads + 1 floor above.
        if (p.memTrips > 0)
            poolFloor = std::max(poolFloor, bg + p.loads + 3);
        k.phases.push_back(p);
    }
    k.regs = std::min(kMaxRegs, std::max(poolFloor, maxPeak) +
                                    static_cast<int>(rng.uniformInt(0, 8)));
    for (PhaseSpec &p : k.phases) {
        if (!p.barrierAfter || !rng.chance(0.4))
            continue;
        const int floor = bg + (k.sharedBytes > 0 ? 1 : 0);
        const int live = floor + static_cast<int>(rng.uniformInt(0, 4));
        // The generator materializes barrierLive - floor pad registers
        // from the same pool as everything else; keep headroom so the
        // pool cannot run dry mid-phase.
        if (live <= k.regs - 2)
            p.barrierLive = live;
    }

    // --- Fault plan -----------------------------------------------------
    if (rng.chance(0.55)) {
        FaultPlan &f = fc.fault;
        f.seed = rng.next();
        if (rng.chance(0.3)) {
            // Corrupt-only plan: lets the sanitize oracle attribute a
            // SanitizerError (or its absence) to exactly one cause.
            f.corruptStateAtCycle =
                static_cast<std::uint64_t>(rng.uniformInt(100, 6000));
        } else {
            if (rng.chance(0.5)) {
                f.denyAcquire = sampleWindow(rng);
                f.denyAcquireChance = pickOne(rng, {0.25, 0.5, 1.0});
            }
            if (rng.chance(0.35)) {
                f.delayRelease = sampleWindow(rng);
                // Mostly short delays; rarely one past the watchdog
                // budget so watchdog expiry stays on the fuzzed path.
                f.releaseDelayCycles =
                    rng.chance(0.1)
                        ? 400'000
                        : static_cast<std::uint64_t>(
                              rng.uniformInt(50, 4000));
            }
            if (rng.chance(0.3)) {
                f.shrinkSrpAtCycle =
                    static_cast<std::uint64_t>(rng.uniformInt(100, 8000));
                f.shrinkSrpSections = static_cast<int>(rng.uniformInt(1, 2));
            }
            if (rng.chance(0.4)) {
                f.memSpike = sampleWindow(rng);
                f.memSpikeFactor = static_cast<int>(rng.uniformInt(2, 6));
            }
            if (!f.active()) {
                f.denyAcquire = sampleWindow(rng);
                f.denyAcquireChance = 0.5;
            }
        }
    }

    fc.snapshotCycle = static_cast<std::uint64_t>(rng.uniformInt(200, 15000));
    fc.policy = pickOne<const char *>(rng, {"regmutex", "paired", "owf",
                                            "rfv"});
    return fc;
}

bool
validateCase(const FuzzCase &fc, std::string *why)
{
    const auto fail = [&](std::string message) {
        if (why)
            *why = std::move(message);
        return false;
    };
    const GpuConfig &g = fc.config;
    const KernelSpec &k = fc.kernel;

    // Config envelope: wide enough for every factory architecture plus
    // the sampled perturbations, tight enough that a hand-edited repro
    // cannot demand unbounded memory or runtime.
    if (g.numSms < 1 || g.numSms > 8)
        return fail("num_sms outside [1, 8]");
    if (g.warpSize != 32)
        return fail("warp_size must be 32");
    if (g.registersPerSm < 1024 || g.registersPerSm > 262144)
        return fail("registers_per_sm outside [1024, 262144]");
    if (g.maxWarpsPerSm < 1 || g.maxWarpsPerSm > 128)
        return fail("max_warps_per_sm outside [1, 128]");
    if (g.maxCtasPerSm < 1 || g.maxCtasPerSm > 64)
        return fail("max_ctas_per_sm outside [1, 64]");
    if (g.maxThreadsPerSm < g.warpSize || g.maxThreadsPerSm > 65536)
        return fail("max_threads_per_sm outside [32, 65536]");
    if (g.sharedMemPerSm < 0 || g.sharedMemPerSm > (1 << 24))
        return fail("shared_mem_per_sm outside [0, 16MiB]");
    if (g.numSchedulers < 1 || g.numSchedulers > 8)
        return fail("num_schedulers outside [1, 8]");
    if (g.regAllocGranularity < 1 || g.regAllocGranularity > 32)
        return fail("reg_alloc_granularity outside [1, 32]");
    if (g.aluLatency < 1 || g.sfuLatency < 1 || g.sharedLatency < 1 ||
        g.globalLatency < 1 || g.aluLatency > 100'000 ||
        g.sfuLatency > 100'000 || g.sharedLatency > 100'000 ||
        g.globalLatency > 100'000)
        return fail("latency outside [1, 100000]");
    if (g.memIssuePerCycle < 1 || g.memIssuePerCycle > 32)
        return fail("mem_issue_per_cycle outside [1, 32]");
    if (g.maxPendingMemPerWarp < 1 || g.maxPendingMemPerWarp > 64)
        return fail("max_pending_mem_per_warp outside [1, 64]");
    if (g.rfBanks < 1 || g.rfBanks > 64)
        return fail("rf_banks outside [1, 64]");
    if (g.watchdogCycles < 10'000 || g.watchdogCycles > 10'000'000)
        return fail("watchdog_cycles outside [10000, 10000000]");

    // Kernel envelope.
    if (k.phases.empty() || k.phases.size() > 16)
        return fail("phase count outside [1, 16]");
    if (k.persistent < 2 || k.persistent > 32)
        return fail("persistent outside [2, 32]");
    const int bg = 1 + k.persistent;
    if (k.regs < bg + 3 || k.regs > 256)
        return fail("regs outside [background + 3, 256]");
    if (k.ctaThreads < g.warpSize || k.ctaThreads % g.warpSize != 0)
        return fail("cta_threads not a positive multiple of warp_size");
    if (k.ctaThreads > g.maxThreadsPerSm)
        return fail("cta_threads exceeds max_threads_per_sm");
    if (g.warpsPerCta(k.ctaThreads) > g.maxWarpsPerSm)
        return fail("CTA warps exceed max_warps_per_sm");
    if (k.gridCtasPerSm < 1 || k.gridCtasPerSm > 16)
        return fail("grid_ctas_per_sm outside [1, 16]");
    if (k.sharedBytes < 0 || k.sharedBytes > g.sharedMemPerSm)
        return fail("shared_bytes outside [0, shared_mem_per_sm]");
    if (roundUp(k.regs, g.regAllocGranularity) * k.ctaThreads >
        g.registersPerSm)
        return fail("one CTA does not fit the baseline register file");
    for (const PhaseSpec &p : k.phases) {
        if (p.trips < 1 || p.trips > 64)
            return fail("phase trips outside [1, 64]");
        if (p.memTrips < 0 || p.memTrips > 64)
            return fail("phase mem_trips outside [0, 64]");
        if (p.loads < 1 || p.loads > 32)
            return fail("phase loads outside [1, 32]");
        if (p.aluPerTemp < 0 || p.aluPerTemp > 16)
            return fail("phase alu_per_temp outside [0, 16]");
        const int directLoads = p.memTrips > 0 ? 0 : p.loads;
        if (p.peak < bg + 2 + directLoads)
            return fail("phase peak below background + counter + loads");
        if (p.peak > k.regs)
            return fail("phase peak exceeds the register budget");
        if (p.memTrips > 0 && k.regs < bg + p.loads + 3)
            return fail("regs below the memory-subloop pool demand");
        if (p.barrierLive != 0) {
            if (p.barrierLive < bg + (k.sharedBytes > 0 ? 1 : 0))
                return fail("barrier_live below the background live count");
            if (p.barrierLive > k.regs - 2)
                return fail("barrier_live too close to the register budget");
        }
    }

    // Fault + oracle-parameter envelope.
    const FaultPlan &f = fc.fault;
    if (f.denyAcquireChance < 0.0 || f.denyAcquireChance > 1.0)
        return fail("deny_chance outside [0, 1]");
    if (f.denyAcquire.until < f.denyAcquire.from ||
        f.delayRelease.until < f.delayRelease.from ||
        f.memSpike.until < f.memSpike.from)
        return fail("fault window ends before it starts");
    if (f.releaseDelayCycles > 2'000'000)
        return fail("release_delay above 2000000");
    if (f.shrinkSrpSections < 0 || f.shrinkSrpSections > 64)
        return fail("shrink_sections outside [0, 64]");
    if (f.memSpikeFactor < 1 || f.memSpikeFactor > 64)
        return fail("spike_factor outside [1, 64]");
    if (f.shrinkSrpAtCycle > 10'000'000 || f.corruptStateAtCycle > 10'000'000)
        return fail("fault trigger cycle above 10000000");
    if (fc.snapshotCycle < 1 || fc.snapshotCycle > 10'000'000)
        return fail("snapshot_cycle outside [1, 10000000]");
    if (fc.policy != "baseline" && fc.policy != "regmutex" &&
        fc.policy != "paired" && fc.policy != "owf" && fc.policy != "rfv")
        return fail("unknown focus policy \"" + fc.policy + "\"");

    // Final authority: the generator itself must accept the spec.
    try {
        buildKernel(k, g.numSms);
    } catch (const FatalError &e) {
        return fail(std::string("buildKernel rejects the spec: ") + e.what());
    }
    return true;
}

Program
buildCaseProgram(const FuzzCase &fc)
{
    return buildKernel(fc.kernel, fc.config.numSms);
}

std::string
describeCase(const FuzzCase &fc)
{
    std::ostringstream os;
    os << "seed=" << hexU64(fc.seed) << " arch=" << fc.arch
       << " sms=" << fc.config.numSms << " policy=" << fc.policy
       << " regs=" << fc.kernel.regs << " cta=" << fc.kernel.ctaThreads
       << " phases=" << fc.kernel.phases.size() << " snap@"
       << fc.snapshotCycle;
    if (fc.fault.active())
        os << " fault=[" << fc.fault.describe() << "]";
    return os.str();
}

void
caseToJson(JsonWriter &w, const FuzzCase &fc)
{
    w.beginObject();
    w.key("schema").value(FuzzCase::kSchemaVersion);
    w.key("seed").value(hexU64(fc.seed));
    w.key("arch").value(fc.arch);
    w.key("policy").value(fc.policy);
    w.key("snapshot_cycle").value(fc.snapshotCycle);
    w.key("config");
    configToJson(w, fc.config);
    w.key("kernel");
    kernelToJson(w, fc.kernel);
    w.key("fault");
    faultToJson(w, fc.fault);
    w.endObject();
}

std::string
caseToJson(const FuzzCase &fc)
{
    JsonWriter w;
    caseToJson(w, fc);
    return w.take();
}

FuzzCase
caseFromJson(const JsonValue &value)
{
    constexpr std::string_view what = "case";
    requireJsonObject(value, what);
    const int schema = needInt(value, what, "schema");
    if (schema != FuzzCase::kSchemaVersion)
        throw JsonSchemaError(
            "fuzz repro: unsupported schema version " +
            std::to_string(schema) + " (this build understands " +
            std::to_string(FuzzCase::kSchemaVersion) + ")");
    FuzzCase fc;
    fc.seed = needHexU64(value, what, "seed");
    fc.arch = needString(value, what, "arch");
    fc.policy = needString(value, what, "policy");
    fc.snapshotCycle = needU64(value, what, "snapshot_cycle");
    fc.config = configFromJson(needObject(value, what, "config"));
    fc.kernel = kernelFromJson(needObject(value, what, "kernel"));
    fc.fault = faultFromJson(needObject(value, what, "fault"));
    return fc;
}

} // namespace rm
