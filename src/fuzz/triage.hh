#ifndef RM_FUZZ_TRIAGE_HH
#define RM_FUZZ_TRIAGE_HH

/**
 * @file
 * Finding triage and the on-disk repro format. A campaign can hit the
 * same defect on hundreds of seeds; Triage buckets findings by their
 * signature (oracle id + failure class, already encoding
 * DeadlockCause / error type where relevant) so the campaign reports
 * *unique* defects, keeps the first-seen seed per bucket, and attaches
 * the minimized representative the shrinker produced. Buckets export
 * as JSONL — one self-contained line per defect — and individual
 * findings as `.repro` JSON files that `rm-fuzz --replay` re-checks.
 */

#include <cstdint>
#include <map>
#include <string>

#include "fuzz/gen.hh"
#include "fuzz/oracles.hh"

namespace rm {

struct JsonValue;

/** One deduped defect: every finding sharing a signature. */
struct TriageBucket
{
    std::string signature;
    std::string oracle;
    /** Findings folded into this bucket. */
    std::uint64_t count = 0;
    /** Seed of the first case that hit the bucket. */
    std::uint64_t firstSeed = 0;
    /** Message of the first finding (detail, not identity). */
    std::string firstMessage;
    /** First-seen (or minimized) reproducing case. */
    FuzzCase repro;
    bool hasRepro = false;
};

/** Signature-keyed finding accumulator. */
class Triage
{
  public:
    /** Fold @p finding (hit on @p fuzz_case) in; true when the
     *  signature is new. */
    bool record(const OracleFinding &finding, const FuzzCase &fuzz_case);

    /** Replace a bucket's representative with its minimized case. */
    void attachRepro(const std::string &signature, const FuzzCase &reduced);

    const std::map<std::string, TriageBucket> &buckets() const
    {
        return table;
    }

    std::size_t uniqueCount() const { return table.size(); }
    std::uint64_t totalCount() const;

    /** One JSON object per bucket, newline-terminated (JSONL). */
    std::string toJsonl() const;

  private:
    std::map<std::string, TriageBucket> table;
};

/**
 * One `.repro` file: the case plus what replay should expect.
 * An empty signature means "expect a clean pass" — the corpus form:
 * seeds that once found a (since fixed) defect, or that pin tricky
 * regions of the case space, and must stay green on HEAD.
 */
struct ReproFile
{
    /** Oracle that found the defect; empty on corpus entries. */
    std::string oracle;
    /** Expected finding signature; empty expects no findings. */
    std::string signature;
    /** Free-form provenance note. */
    std::string note;
    FuzzCase fuzzCase;
};

std::string reproToJson(const ReproFile &repro);

/** @throws JsonSchemaError on a wrong-shaped document. */
ReproFile reproFromJson(const JsonValue &value);

} // namespace rm

#endif // RM_FUZZ_TRIAGE_HH
