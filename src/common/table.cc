#include "common/table.hh"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/errors.hh"

namespace rm {

std::string
percent(double fraction, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals)
       << fraction * 100.0 << "%";
    return os.str();
}

std::string
fixed(double value, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << value;
    return os.str();
}

Table::Table(std::vector<std::string> column_headers)
    : headers(std::move(column_headers))
{
    fatalIf(headers.empty(), "Table requires at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    fatalIf(cells.size() != headers.size(),
            "Table row has ", cells.size(), " cells, expected ",
            headers.size());
    rows.push_back(std::move(cells));
}

const std::string &
Table::cell(std::size_t row, std::size_t col) const
{
    panicIf(row >= rows.size() || col >= headers.size(),
            "Table::cell out of range");
    return rows[row][col];
}

std::string
Table::toText() const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << cells[c];
            os << (c + 1 == cells.size() ? "\n" : "  ");
        }
    };

    emit_row(headers);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : rows)
        emit_row(row);
    return os.str();
}

std::string
Table::toCsv() const
{
    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << cells[c] << (c + 1 == cells.size() ? "\n" : ",");
    };
    emit_row(headers);
    for (const auto &row : rows)
        emit_row(row);
    return os.str();
}

void
Table::print(std::ostream &os) const
{
    os << toText();
}

Row &
Row::operator<<(const std::string &cell)
{
    cells.push_back(cell);
    return *this;
}

Row &
Row::operator<<(const char *cell)
{
    cells.emplace_back(cell);
    return *this;
}

Row &
Row::operator<<(long long value)
{
    cells.push_back(std::to_string(value));
    return *this;
}

Row &
Row::operator<<(unsigned long long value)
{
    cells.push_back(std::to_string(value));
    return *this;
}

Row &
Row::operator<<(int value)
{
    cells.push_back(std::to_string(value));
    return *this;
}

Row &
Row::operator<<(unsigned value)
{
    cells.push_back(std::to_string(value));
    return *this;
}

Row &
Row::operator<<(std::size_t value)
{
    cells.push_back(std::to_string(value));
    return *this;
}

Row &
Row::operator<<(double value)
{
    cells.push_back(fixed(value, 3));
    return *this;
}

} // namespace rm
