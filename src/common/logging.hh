#ifndef RM_COMMON_LOGGING_HH
#define RM_COMMON_LOGGING_HH

/**
 * @file
 * Minimal status-message facility following the gem5 inform/warn model.
 * Messages are informational only and never stop the run; errors go
 * through common/errors.hh instead.
 *
 * Every message goes to stderr prefixed "rm: <level>: ". The initial
 * verbosity is Warn, overridable without code changes through the
 * RM_LOG_LEVEL environment variable (0-3 or silent/warn/info/debug);
 * setLogLevel() still wins once called.
 */

#include <sstream>
#include <string>

namespace rm {

/** Verbosity levels, higher is chattier. */
enum class LogLevel { Silent = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Set the global verbosity (default: Warn). */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

namespace detail {

void emit(LogLevel level, const std::string &message);

template <typename... Args>
void
emitJoined(LogLevel level, const Args &...args)
{
    if (static_cast<int>(level) > static_cast<int>(logLevel()))
        return;
    std::ostringstream os;
    (os << ... << args);
    emit(level, os.str());
}

} // namespace detail

/** Normal operating message the user may want to see. */
template <typename... Args>
void
inform(const Args &...args)
{
    detail::emitJoined(LogLevel::Inform, args...);
}

/** Something suspicious but survivable happened. */
template <typename... Args>
void
warn(const Args &...args)
{
    detail::emitJoined(LogLevel::Warn, args...);
}

/** Developer-facing tracing. */
template <typename... Args>
void
debugLog(const Args &...args)
{
    detail::emitJoined(LogLevel::Debug, args...);
}

} // namespace rm

#endif // RM_COMMON_LOGGING_HH
