#ifndef RM_COMMON_BITMASK_HH
#define RM_COMMON_BITMASK_HH

/**
 * @file
 * Dynamically sized bitmask used to model the RegMutex hardware
 * structures: the warp-status bitmask, the Shared Register Pool (SRP)
 * bitmask, and the per-instruction register liveness vectors of the
 * compiler. Provides Find First Zero (FFZ), the primitive the RegMutex
 * acquire logic performs on the SRP bitmask (paper Fig. 5a).
 */

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/errors.hh"

namespace rm {

/**
 * A fixed-size (chosen at construction) bitmask over 64-bit words.
 * All out-of-range accesses panic; this models a hardware structure
 * whose width is set at design time.
 */
class Bitmask
{
  public:
    /** Create a bitmask of @p num_bits bits, all clear. */
    explicit Bitmask(std::size_t num_bits = 0);

    /** Number of bits in the mask. */
    std::size_t size() const { return numBits; }

    /** Set bit @p index to 1. */
    void set(std::size_t index);

    /** Clear bit @p index to 0. */
    void unset(std::size_t index);

    /** Assign bit @p index. */
    void assign(std::size_t index, bool value);

    /** Read bit @p index. */
    bool test(std::size_t index) const;

    /** Set all bits. */
    void setAll();

    /** Clear all bits. */
    void clearAll();

    /** Number of set bits. */
    std::size_t count() const;

    /** True when no bit is set. */
    bool none() const { return count() == 0; }

    /** True when every bit is set. */
    bool all() const { return count() == numBits; }

    /**
     * Find First Zero: index of the least significant clear bit, or
     * std::nullopt when every bit is set. This is the hardware FFZ
     * operation RegMutex performs on the SRP bitmask on an acquire.
     */
    std::optional<std::size_t> ffz() const;

    /** Index of the least significant set bit, if any. */
    std::optional<std::size_t> ffs() const;

    /** Bitwise OR with another mask of the same size. */
    Bitmask &operator|=(const Bitmask &other);

    /** Bitwise AND with another mask of the same size. */
    Bitmask &operator&=(const Bitmask &other);

    /** Remove all bits set in @p other (this &= ~other). */
    void subtract(const Bitmask &other);

    bool operator==(const Bitmask &other) const;
    bool operator!=(const Bitmask &other) const { return !(*this == other); }

    /** Render as a string of '0'/'1', LSB first (bit 0 leftmost). */
    std::string toString() const;

    /** Indices of all set bits, ascending. */
    std::vector<std::size_t> setIndices() const;

    /**
     * Word @p w of the backing store (0 when past the end). Hot-path
     * peek for masks known to fit one word — RFV's per-candidate
     * mapped-register test ANDs against this instead of calling
     * test() per operand.
     */
    std::uint64_t word(std::size_t w) const
    {
        return w < words.size() ? words[w] : 0;
    }

    /**
     * OR @p bits into backing word @p w — the bulk counterpart of
     * set() for hot paths that mutate many bits of a one-word region
     * at once (RFV's operand mapping). Panics when any bit would land
     * beyond the mask, matching set()'s bounds contract.
     */
    void setWordBits(std::size_t w, std::uint64_t bits)
    {
        checkWordBits(w, bits);
        words[w] |= bits;
    }

    /** Clear every bit of @p bits in backing word @p w (bulk unset()). */
    void clearWordBits(std::size_t w, std::uint64_t bits)
    {
        checkWordBits(w, bits);
        words[w] &= ~bits;
    }

  private:
    std::size_t numBits;
    std::vector<std::uint64_t> words;

    void checkIndex(std::size_t index) const;
    /** Panic unless every set bit of @p bits indexes inside the mask. */
    void checkWordBits(std::size_t w, std::uint64_t bits) const
    {
        panicIf(w >= words.size() ||
                    (bits != 0 &&
                     (w << 6) + 63 -
                             static_cast<std::size_t>(
                                 __builtin_clzll(bits)) >=
                         numBits),
                "Bitmask: word write beyond ", numBits, " bits");
    }
    /** Clear any stray bits beyond numBits in the last word. */
    void trimTail();
};

} // namespace rm

#endif // RM_COMMON_BITMASK_HH
