#include "common/logging.hh"

#include <iostream>

namespace rm {

namespace {
LogLevel globalLevel = LogLevel::Warn;
} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

namespace detail {

void
emit(LogLevel level, const std::string &message)
{
    const char *tag = "info";
    switch (level) {
      case LogLevel::Warn:
        tag = "warn";
        break;
      case LogLevel::Inform:
        tag = "info";
        break;
      case LogLevel::Debug:
        tag = "debug";
        break;
      default:
        break;
    }
    std::cerr << tag << ": " << message << "\n";
}

} // namespace detail

} // namespace rm
