#include "common/logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace rm {

namespace {

/**
 * Parse an RM_LOG_LEVEL value: a number ("0".."3") or a level name
 * (silent/warn/warning/info/inform/debug, case-sensitive lowercase).
 * Unrecognized values fall back to @p fallback — logging must never
 * make a run fail.
 */
LogLevel
parseLevel(const char *text, LogLevel fallback)
{
    const std::string value = text;
    if (value == "0" || value == "silent")
        return LogLevel::Silent;
    if (value == "1" || value == "warn" || value == "warning")
        return LogLevel::Warn;
    if (value == "2" || value == "info" || value == "inform")
        return LogLevel::Inform;
    if (value == "3" || value == "debug")
        return LogLevel::Debug;
    return fallback;
}

/**
 * The default comes from the RM_LOG_LEVEL environment variable so
 * benches and tests can raise verbosity without code changes; absent
 * or malformed, it stays at Warn.
 */
LogLevel
initialLevel()
{
    const char *env = std::getenv("RM_LOG_LEVEL");
    return env ? parseLevel(env, LogLevel::Warn) : LogLevel::Warn;
}

std::atomic<LogLevel> globalLevel = initialLevel();

/**
 * Serializes emit(): parallel SM / sweep execution logs from many
 * threads, and interleaved half-lines would make the output useless.
 * Each message is assembled into one string first, so the lock is held
 * only for a single stream insertion (line-atomic output).
 */
std::mutex &
emitMutex()
{
    static std::mutex mutex;
    return mutex;
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

namespace detail {

void
emit(LogLevel level, const std::string &message)
{
    const char *tag = "info";
    switch (level) {
      case LogLevel::Warn:
        tag = "warn";
        break;
      case LogLevel::Inform:
        tag = "info";
        break;
      case LogLevel::Debug:
        tag = "debug";
        break;
      default:
        break;
    }
    std::string line;
    line.reserve(message.size() + 16);
    line += "rm: ";
    line += tag;
    line += ": ";
    line += message;
    line += '\n';
    const std::lock_guard<std::mutex> lock(emitMutex());
    std::cerr << line;
}

} // namespace detail

} // namespace rm
