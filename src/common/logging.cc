#include "common/logging.hh"

#include <cstdlib>
#include <iostream>

namespace rm {

namespace {

/**
 * Parse an RM_LOG_LEVEL value: a number ("0".."3") or a level name
 * (silent/warn/warning/info/inform/debug, case-sensitive lowercase).
 * Unrecognized values fall back to @p fallback — logging must never
 * make a run fail.
 */
LogLevel
parseLevel(const char *text, LogLevel fallback)
{
    const std::string value = text;
    if (value == "0" || value == "silent")
        return LogLevel::Silent;
    if (value == "1" || value == "warn" || value == "warning")
        return LogLevel::Warn;
    if (value == "2" || value == "info" || value == "inform")
        return LogLevel::Inform;
    if (value == "3" || value == "debug")
        return LogLevel::Debug;
    return fallback;
}

/**
 * The default comes from the RM_LOG_LEVEL environment variable so
 * benches and tests can raise verbosity without code changes; absent
 * or malformed, it stays at Warn.
 */
LogLevel
initialLevel()
{
    const char *env = std::getenv("RM_LOG_LEVEL");
    return env ? parseLevel(env, LogLevel::Warn) : LogLevel::Warn;
}

LogLevel globalLevel = initialLevel();

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

namespace detail {

void
emit(LogLevel level, const std::string &message)
{
    const char *tag = "info";
    switch (level) {
      case LogLevel::Warn:
        tag = "warn";
        break;
      case LogLevel::Inform:
        tag = "info";
        break;
      case LogLevel::Debug:
        tag = "debug";
        break;
      default:
        break;
    }
    std::cerr << "rm: " << tag << ": " << message << "\n";
}

} // namespace detail

} // namespace rm
