#ifndef RM_COMMON_ERRORS_HH
#define RM_COMMON_ERRORS_HH

/**
 * @file
 * Error model for the RegMutex library, following the gem5 fatal/panic
 * distinction: fatal() reports a user/configuration error, panic()
 * reports an internal invariant violation (a library bug). Both throw
 * typed exceptions so that tests can assert on them and embedding
 * applications can recover.
 */

#include <sstream>
#include <stdexcept>
#include <string>

namespace rm {

/** Thrown on user/configuration errors (bad kernel, bad config). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Thrown on internal invariant violations (library bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

namespace detail {

inline void
appendAll(std::ostringstream &)
{}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    appendAll(os, rest...);
}

} // namespace detail

/**
 * Report a user-caused error (invalid configuration, malformed kernel).
 * All arguments are stream-concatenated into the message.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    detail::appendAll(os, args...);
    throw FatalError(os.str());
}

/**
 * Report an internal invariant violation that should never happen
 * regardless of user input.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    detail::appendAll(os, args...);
    throw PanicError(os.str());
}

/** fatal() unless the condition holds. */
template <typename... Args>
void
fatalIf(bool condition, const Args &...args)
{
    if (condition)
        fatal(args...);
}

/** panic() unless the condition holds. */
template <typename... Args>
void
panicIf(bool condition, const Args &...args)
{
    if (condition)
        panic(args...);
}

} // namespace rm

#endif // RM_COMMON_ERRORS_HH
