#include "common/thread_pool.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>
#include <utility>

#include "obs/profiler.hh"

namespace rm {

ThreadPool::ThreadPool(int threads)
{
    if (threads < 1)
        threads = 1;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    cv.notify_all();
    for (std::thread &worker : workers)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        queue.push_back(std::move(task));
    }
    cv.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            // Wait-vs-run attribution: the wait span covers queue
            // sleep plus dequeue, the run span the task body. A span
            // open across enable()/disable() is dropped, so an idle
            // worker never smears a stale wait into a session.
            RM_PROF_SCOPE(ProfPhase::PoolTaskWait);
            std::unique_lock<std::mutex> lock(mutex);
            cv.wait(lock, [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return;  // stopping and drained
            task = std::move(queue.front());
            queue.pop_front();
        }
        {
            RM_PROF_SCOPE(ProfPhase::PoolTaskRun);
            task();
        }
    }
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool([] {
        if (const char *env = std::getenv("RM_THREADS")) {
            try {
                const int n = std::stoi(env);
                if (n > 0)
                    return n;
            } catch (const std::exception &) {
                // Malformed values fall through to the hardware width;
                // a tuning knob must never make a run fail.
            }
        }
        const unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : static_cast<int>(hw);
    }());
    return pool;
}

namespace {

/**
 * State of one parallelFor() batch, shared between the caller and any
 * pool workers that pick up helper tasks. Kept alive by shared_ptr:
 * a helper scheduled after the batch drained still touches the
 * counters (and immediately exits) after the caller has returned.
 */
struct Batch
{
    std::function<void(int)> body;
    int n = 0;
    std::atomic<int> next{0};       ///< next iteration to claim
    std::atomic<int> completed{0};  ///< iterations finished (or skipped)
    std::atomic<bool> stop{false};  ///< set on first exception
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;
};

/**
 * Claim-and-run loop every participant executes. Each of the n
 * iterations is claimed exactly once and bumps `completed` exactly
 * once (skipped iterations after an error included), so completed == n
 * is the batch-done condition the caller waits on.
 */
void
runBatch(const std::shared_ptr<Batch> &batch)
{
    for (;;) {
        const int i = batch->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= batch->n)
            return;
        if (!batch->stop.load(std::memory_order_relaxed)) {
            try {
                batch->body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(batch->mutex);
                if (!batch->error)
                    batch->error = std::current_exception();
                batch->stop.store(true, std::memory_order_relaxed);
            }
        }
        if (batch->completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            batch->n) {
            std::lock_guard<std::mutex> lock(batch->mutex);
            batch->cv.notify_all();
        }
    }
}

} // namespace

void
parallelFor(int n, const std::function<void(int)> &body, int threads)
{
    if (n <= 0)
        return;
    if (n == 1 || threads == 1) {
        for (int i = 0; i < n; ++i)
            body(i);
        return;
    }

    ThreadPool &pool = ThreadPool::shared();
    int width = threads == 0 ? pool.size() + 1 : threads;
    if (width > n)
        width = n;

    auto batch = std::make_shared<Batch>();
    batch->body = body;
    batch->n = n;

    // One participant is the calling thread; the rest are helper tasks
    // that may or may not run before the batch drains.
    for (int i = 0; i < width - 1; ++i)
        pool.submit([batch] { runBatch(batch); });
    runBatch(batch);

    std::unique_lock<std::mutex> lock(batch->mutex);
    batch->cv.wait(lock, [&] {
        return batch->completed.load(std::memory_order_acquire) == batch->n;
    });
    if (batch->error)
        std::rethrow_exception(batch->error);
}

} // namespace rm
