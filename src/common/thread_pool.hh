#ifndef RM_COMMON_THREAD_POOL_HH
#define RM_COMMON_THREAD_POOL_HH

/**
 * @file
 * Shared worker-thread pool and a deadlock-free parallel-for on top of
 * it. The pool is the substrate for both levels of simulator
 * parallelism: the multi-SM engine (sim/gpu.hh) fans its SMs out over
 * it, and the sweep runner (core/sweep.hh) fans (workload × policy ×
 * config) cells out over the same pool. Nesting is safe by
 * construction: parallelFor() never blocks a thread on work that only
 * another pool thread could perform — the calling thread always
 * participates in its own batch, so a batch completes even when every
 * pool worker is busy with outer batches.
 *
 * Determinism contract: parallelFor() only partitions *independent*
 * iterations; callers must not let iteration bodies share mutable
 * state. Under that contract results are bit-identical for any thread
 * count, which the determinism tests assert for the simulator.
 */

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rm {

/** Fixed-size worker pool executing submitted tasks FIFO. */
class ThreadPool
{
  public:
    /** @param threads worker count; values < 1 are clamped to 1. */
    explicit ThreadPool(int threads);

    /** Joins all workers; pending tasks still run to completion. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int size() const { return static_cast<int>(workers.size()); }

    /** Enqueue @p task for execution on some worker. */
    void submit(std::function<void()> task);

    /**
     * The process-wide pool. Sized by the RM_THREADS environment
     * variable when set to a positive integer, otherwise by
     * std::thread::hardware_concurrency().
     */
    static ThreadPool &shared();

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    std::mutex mutex;
    std::condition_variable cv;
    bool stopping = false;
};

/**
 * Run @p body(0) .. @p body(n-1), partitioned over the shared pool.
 * The calling thread participates, so this is safe to call from inside
 * another parallelFor() iteration (the nested batch degrades to serial
 * execution when all workers are busy). Iterations are claimed from an
 * atomic counter, so the assignment of iterations to threads is
 * non-deterministic — bodies must be independent.
 *
 * @param threads parallelism cap: 1 (or n <= 1) runs inline with no
 *        pool involvement; 0 uses the shared pool's full width; k > 1
 *        uses at most k concurrent participants.
 *
 * The first exception a body throws is rethrown in the caller after
 * all claimed iterations finish; remaining unclaimed iterations are
 * skipped.
 */
void parallelFor(int n, const std::function<void(int)> &body,
                 int threads = 0);

} // namespace rm

#endif // RM_COMMON_THREAD_POOL_HH
