#ifndef RM_COMMON_TABLE_HH
#define RM_COMMON_TABLE_HH

/**
 * @file
 * Aligned text-table and CSV rendering used by the benchmark harness to
 * print the rows/series each paper table and figure reports.
 */

#include <iosfwd>
#include <string>
#include <vector>

namespace rm {

/** Format @p fraction (0.13 -> "13.0%"). */
std::string percent(double fraction, int decimals = 1);

/** Format a double with fixed decimals. */
std::string fixed(double value, int decimals = 2);

/**
 * Column-aligned text table. Columns are declared up front; every row
 * must supply one cell per column. Numeric helpers convert on entry.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> column_headers);

    /** Append a fully rendered row (size must match the header). */
    void addRow(std::vector<std::string> cells);

    std::size_t numRows() const { return rows.size(); }
    std::size_t numColumns() const { return headers.size(); }

    /** Cell accessor (for tests). */
    const std::string &cell(std::size_t row, std::size_t col) const;

    /** Render as an aligned text table with a header separator. */
    std::string toText() const;

    /** Render as CSV (no quoting of commas; cells must not contain any). */
    std::string toCsv() const;

    /** Stream toText() to @p os. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

/**
 * Incremental row builder so call sites can mix strings and numbers:
 *   table.addRow(Row() << name << percent(x) << cycles);
 */
class Row
{
  public:
    Row &operator<<(const std::string &cell);
    Row &operator<<(const char *cell);
    Row &operator<<(long long value);
    Row &operator<<(unsigned long long value);
    Row &operator<<(int value);
    Row &operator<<(unsigned value);
    Row &operator<<(std::size_t value);
    Row &operator<<(double value);

    std::vector<std::string> take() { return std::move(cells); }

  private:
    std::vector<std::string> cells;
};

} // namespace rm

#endif // RM_COMMON_TABLE_HH
