#include "common/bitmask.hh"

#include <bit>

#include "common/errors.hh"

namespace rm {

namespace {
constexpr std::size_t bitsPerWord = 64;
} // namespace

Bitmask::Bitmask(std::size_t num_bits)
    : numBits(num_bits),
      words((num_bits + bitsPerWord - 1) / bitsPerWord, 0)
{}

void
Bitmask::checkIndex(std::size_t index) const
{
    panicIf(index >= numBits,
            "Bitmask index ", index, " out of range (size ", numBits, ")");
}

void
Bitmask::trimTail()
{
    const std::size_t tail = numBits % bitsPerWord;
    if (tail != 0 && !words.empty())
        words.back() &= (std::uint64_t(1) << tail) - 1;
}

void
Bitmask::set(std::size_t index)
{
    checkIndex(index);
    words[index / bitsPerWord] |= std::uint64_t(1) << (index % bitsPerWord);
}

void
Bitmask::unset(std::size_t index)
{
    checkIndex(index);
    words[index / bitsPerWord] &=
        ~(std::uint64_t(1) << (index % bitsPerWord));
}

void
Bitmask::assign(std::size_t index, bool value)
{
    if (value)
        set(index);
    else
        unset(index);
}

bool
Bitmask::test(std::size_t index) const
{
    checkIndex(index);
    return (words[index / bitsPerWord] >>
            (index % bitsPerWord)) & std::uint64_t(1);
}

void
Bitmask::setAll()
{
    for (auto &word : words)
        word = ~std::uint64_t(0);
    trimTail();
}

void
Bitmask::clearAll()
{
    for (auto &word : words)
        word = 0;
}

std::size_t
Bitmask::count() const
{
    std::size_t total = 0;
    for (auto word : words)
        total += std::popcount(word);
    return total;
}

std::optional<std::size_t>
Bitmask::ffz() const
{
    for (std::size_t w = 0; w < words.size(); ++w) {
        if (words[w] != ~std::uint64_t(0)) {
            const std::size_t bit =
                std::countr_one(words[w]) + w * bitsPerWord;
            if (bit < numBits)
                return bit;
            return std::nullopt;
        }
    }
    return std::nullopt;
}

std::optional<std::size_t>
Bitmask::ffs() const
{
    for (std::size_t w = 0; w < words.size(); ++w) {
        if (words[w] != 0) {
            const std::size_t bit =
                std::countr_zero(words[w]) + w * bitsPerWord;
            if (bit < numBits)
                return bit;
            return std::nullopt;
        }
    }
    return std::nullopt;
}

Bitmask &
Bitmask::operator|=(const Bitmask &other)
{
    panicIf(other.numBits != numBits, "Bitmask size mismatch in |=");
    for (std::size_t w = 0; w < words.size(); ++w)
        words[w] |= other.words[w];
    return *this;
}

Bitmask &
Bitmask::operator&=(const Bitmask &other)
{
    panicIf(other.numBits != numBits, "Bitmask size mismatch in &=");
    for (std::size_t w = 0; w < words.size(); ++w)
        words[w] &= other.words[w];
    return *this;
}

void
Bitmask::subtract(const Bitmask &other)
{
    panicIf(other.numBits != numBits, "Bitmask size mismatch in subtract");
    for (std::size_t w = 0; w < words.size(); ++w)
        words[w] &= ~other.words[w];
}

bool
Bitmask::operator==(const Bitmask &other) const
{
    return numBits == other.numBits && words == other.words;
}

std::string
Bitmask::toString() const
{
    std::string out;
    out.reserve(numBits);
    for (std::size_t i = 0; i < numBits; ++i)
        out.push_back(test(i) ? '1' : '0');
    return out;
}

std::vector<std::size_t>
Bitmask::setIndices() const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < numBits; ++i) {
        if (test(i))
            out.push_back(i);
    }
    return out;
}

} // namespace rm
