#ifndef RM_COMMON_RNG_HH
#define RM_COMMON_RNG_HH

/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**) used by
 * the synthetic workload generators and the simulator's synthetic
 * memory contents. Fully self-contained so that every experiment is
 * reproducible bit-for-bit across platforms.
 */

#include <cstdint>

namespace rm {

/**
 * xoshiro256** seeded through splitmix64. Deterministic and portable;
 * not for cryptography.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniformDouble();

    /** Bernoulli draw with probability @p p of returning true. */
    bool chance(double p);

    /** Raw xoshiro256** state, for snapshot round-trips. */
    void exportState(std::uint64_t out[4]) const;

    /** Resume exactly where an exported stream left off. */
    void restoreState(const std::uint64_t in[4]);

  private:
    std::uint64_t state[4];
};

} // namespace rm

#endif // RM_COMMON_RNG_HH
