#include "common/rng.hh"

#include "common/errors.hh"

namespace rm {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : state)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;
    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);
    return result;
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    panicIf(lo > hi, "Rng::uniformInt with lo ", lo, " > hi ", hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    return lo + static_cast<std::int64_t>(next() % span);
}

double
Rng::uniformDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    return uniformDouble() < p;
}

void
Rng::exportState(std::uint64_t out[4]) const
{
    for (int i = 0; i < 4; ++i)
        out[i] = state[i];
}

void
Rng::restoreState(const std::uint64_t in[4])
{
    for (int i = 0; i < 4; ++i)
        state[i] = in[i];
}

} // namespace rm
