#include "regmutex/allocator.hh"

#include <algorithm>

#include "common/errors.hh"
#include "sim/occupancy.hh"

namespace rm {

void
RegMutexAllocator::prepare(const GpuConfig &config, const Program &program)
{
    enabled = program.regmutex.enabled();
    totalPacks = config.registersPerSm / config.warpSize;
    freed = false;
    shrunk = 0;
    pendingShrink = 0;

    if (!enabled) {
        // Zero-sized extended set: behave exactly like the baseline.
        fallbackCoeff = roundRegs(config, program.info.numRegs);
        const Occupancy occ = computeOccupancy(
            config, fallbackCoeff, program.info.ctaThreads,
            program.info.sharedBytesPerCta);
        maxCtas = occ.ctasPerSm;
        bs = fallbackCoeff;
        es = 0;
        sections = 0;
        return;
    }

    bs = program.regmutex.baseRegs;
    es = program.regmutex.extRegs;

    // Occupancy with the base set only, then carve the SRP out of the
    // remaining registers, keeping at least one section (deadlock rule).
    Occupancy occ = computeOccupancy(config, bs, program.info.ctaThreads,
                                     program.info.sharedBytesPerCta);
    int ctas = occ.ctasPerSm;
    const int warps_per_cta = config.warpsPerCta(program.info.ctaThreads);
    sections = 0;
    while (ctas > 0) {
        const int base_used = ctas * program.info.ctaThreads * bs;
        sections = std::min(config.maxWarpsPerSm,
                            (config.registersPerSm - base_used) /
                                (es * config.warpSize));
        if (sections >= 1)
            break;
        --ctas;
    }
    fatalIf(ctas <= 0,
            "RegMutexAllocator: kernel '", program.info.name,
            "' cannot fit one CTA plus one SRP section");
    maxCtas = ctas;
    residentWarpCap = ctas * warps_per_cta;
    srpOffsetPacks = residentWarpCap * bs;

    // Hardware structures (paper Fig. 4): SRP bitmask bits that do not
    // correspond to an SRP section are pre-set and stay set.
    srp = Bitmask(config.maxWarpsPerSm);
    for (int s = sections; s < config.maxWarpsPerSm; ++s)
        srp.set(s);
    warpStatus = Bitmask(config.maxWarpsPerSm);
    lut.assign(config.maxWarpsPerSm, -1);
}

AcquireOutcome
RegMutexAllocator::acquire(SimWarp &warp)
{
    if (!enabled)
        return AcquireOutcome::NotNeeded;
    if (warp.holdsExt)
        return AcquireOutcome::AlreadyHeld;

    // FFZ over the SRP bitmask (paper Fig. 5a).
    const auto section = srp.ffz();
    if (!section)
        return AcquireOutcome::Blocked;

    srp.set(*section);
    warpStatus.set(warp.slot);
    lut[warp.slot] = static_cast<int>(*section);
    warp.holdsExt = true;
    warp.srpSection = static_cast<int>(*section);
    return AcquireOutcome::Acquired;
}

void
RegMutexAllocator::release(SimWarp &warp)
{
    if (!enabled || !warp.holdsExt)
        return;  // redundant release: no effect (paper Sec. III)
    const std::size_t section = static_cast<std::size_t>(lut[warp.slot]);
    srp.unset(section);
    warpStatus.unset(warp.slot);
    lut[warp.slot] = -1;
    warp.holdsExt = false;
    warp.srpSection = -1;
    if (pendingShrink > 0) {
        // A deferred fault-injected revocation claims the section the
        // moment it frees: nothing is released to waiters.
        srp.set(section);
        --pendingShrink;
        ++shrunk;
        return;
    }
    freed = true;
}

int
RegMutexAllocator::faultShrinkCapacity(int amount)
{
    if (!enabled || amount <= 0)
        return 0;
    const int revocable = sections - shrunk - pendingShrink;
    const int target = std::min(amount, revocable);
    int reserved = 0;
    // Free sections are revoked on the spot (their bitmask bit is
    // pre-set like the beyond-capacity bits)...
    for (int s = sections - 1; s >= 0 && reserved < target; --s) {
        const std::size_t bit = static_cast<std::size_t>(s);
        if (!srp.test(bit)) {
            srp.set(bit);
            ++shrunk;
            ++reserved;
        }
    }
    // ...held sections are revoked as their holders release.
    pendingShrink += target - reserved;
    return target;
}

void
RegMutexAllocator::onWarpExit(SimWarp &warp)
{
    release(warp);
}

bool
RegMutexAllocator::consumeFreedFlag()
{
    const bool f = freed;
    freed = false;
    return f;
}

RegisterMapper
RegMutexAllocator::makeMapper() const
{
    if (!enabled)
        return RegisterMapper::baseline(totalPacks, fallbackCoeff);
    return RegisterMapper::regmutex(totalPacks, bs, es, srpOffsetPacks,
                                    sections);
}

int
RegMutexAllocator::lutEntry(int slot) const
{
    panicIf(slot < 0 || slot >= static_cast<int>(lut.size()),
            "RegMutexAllocator::lutEntry: slot out of range");
    return lut[slot];
}

void
PairedRegMutexAllocator::prepare(const GpuConfig &config,
                                 const Program &program)
{
    enabled = program.regmutex.enabled();
    totalPacks = config.registersPerSm / config.warpSize;
    freed = false;

    if (!enabled) {
        fallbackCoeff = roundRegs(config, program.info.numRegs);
        const Occupancy occ = computeOccupancy(
            config, fallbackCoeff, program.info.ctaThreads,
            program.info.sharedBytesPerCta);
        maxCtas = occ.ctasPerSm;
        bs = fallbackCoeff;
        es = 0;
        return;
    }

    bs = program.regmutex.baseRegs;
    es = program.regmutex.extRegs;

    // Each pair of warps owns 2|Bs| + |Es| per-thread registers.
    const int warps_per_cta = config.warpsPerCta(program.info.ctaThreads);
    const Occupancy other = computeOccupancy(
        config, 0, program.info.ctaThreads,
        program.info.sharedBytesPerCta);
    int ctas = other.ctasPerSm;
    while (ctas > 0) {
        const int warps = ctas * warps_per_cta;
        const int used_pairs = (warps + 1) / 2;
        const int regs = (warps * bs + used_pairs * es) * config.warpSize;
        if (regs <= config.registersPerSm)
            break;
        --ctas;
    }
    fatalIf(ctas <= 0,
            "PairedRegMutexAllocator: kernel '", program.info.name,
            "' cannot fit one CTA");
    maxCtas = ctas;
    residentWarpCap = ctas * warps_per_cta;
    pairs = (residentWarpCap + 1) / 2;
    srpOffsetPacks = residentWarpCap * bs;
    pairHeld = Bitmask(config.maxWarpsPerSm / 2);
}

AcquireOutcome
PairedRegMutexAllocator::acquire(SimWarp &warp)
{
    if (!enabled)
        return AcquireOutcome::NotNeeded;
    if (warp.holdsExt)
        return AcquireOutcome::AlreadyHeld;

    const std::size_t pair = static_cast<std::size_t>(warp.slot) / 2;
    if (pairHeld.test(pair))
        return AcquireOutcome::Blocked;  // the partner holds the set

    pairHeld.set(pair);
    warp.holdsExt = true;
    warp.srpSection = static_cast<int>(pair);
    return AcquireOutcome::Acquired;
}

void
PairedRegMutexAllocator::release(SimWarp &warp)
{
    if (!enabled || !warp.holdsExt)
        return;
    pairHeld.unset(static_cast<std::size_t>(warp.slot) / 2);
    warp.holdsExt = false;
    warp.srpSection = -1;
    freed = true;
}

void
PairedRegMutexAllocator::onWarpExit(SimWarp &warp)
{
    release(warp);
}

bool
PairedRegMutexAllocator::consumeFreedFlag()
{
    const bool f = freed;
    freed = false;
    return f;
}

RegisterMapper
PairedRegMutexAllocator::makeMapper() const
{
    if (!enabled)
        return RegisterMapper::baseline(totalPacks, fallbackCoeff);
    return RegisterMapper::regmutex(totalPacks, bs, es, srpOffsetPacks,
                                    pairs);
}

} // namespace rm
