#include "regmutex/allocator.hh"

#include <algorithm>
#include <sstream>

#include "common/errors.hh"
#include "sim/occupancy.hh"
#include "sim/snapshot.hh"
#include "sim/warp_store.hh"

namespace rm {

namespace {

void
flipBitZero(Bitmask &mask)
{
    if (mask.test(0))
        mask.unset(0);
    else
        mask.set(0);
}

} // namespace

void
RegMutexAllocator::prepare(const GpuConfig &config, const Program &program)
{
    enabled = program.regmutex.enabled();
    totalPacks = config.registersPerSm / config.warpSize;
    freed = false;
    shrunk = 0;
    pendingShrink = 0;

    if (!enabled) {
        // Zero-sized extended set: behave exactly like the baseline.
        fallbackCoeff = roundRegs(config, program.info.numRegs);
        const Occupancy occ = computeOccupancy(
            config, fallbackCoeff, program.info.ctaThreads,
            program.info.sharedBytesPerCta);
        maxCtas = occ.ctasPerSm;
        bs = fallbackCoeff;
        es = 0;
        sections = 0;
        return;
    }

    bs = program.regmutex.baseRegs;
    es = program.regmutex.extRegs;

    // Occupancy with the base set only, then carve the SRP out of the
    // remaining registers, keeping at least one section (deadlock rule).
    Occupancy occ = computeOccupancy(config, bs, program.info.ctaThreads,
                                     program.info.sharedBytesPerCta);
    int ctas = occ.ctasPerSm;
    const int warps_per_cta = config.warpsPerCta(program.info.ctaThreads);
    sections = 0;
    while (ctas > 0) {
        const int base_used = ctas * program.info.ctaThreads * bs;
        sections = std::min(config.maxWarpsPerSm,
                            (config.registersPerSm - base_used) /
                                (es * config.warpSize));
        if (sections >= 1)
            break;
        --ctas;
    }
    fatalIf(ctas <= 0,
            "RegMutexAllocator: kernel '", program.info.name,
            "' cannot fit one CTA plus one SRP section");
    maxCtas = ctas;
    residentWarpCap = ctas * warps_per_cta;
    srpOffsetPacks = residentWarpCap * bs;

    // Hardware structures (paper Fig. 4): SRP bitmask bits that do not
    // correspond to an SRP section are pre-set and stay set.
    srp = Bitmask(config.maxWarpsPerSm);
    for (int s = sections; s < config.maxWarpsPerSm; ++s)
        srp.set(s);
    warpStatus = Bitmask(config.maxWarpsPerSm);
    lut.assign(config.maxWarpsPerSm, -1);
}

AcquireOutcome
RegMutexAllocator::acquire(SimWarp &warp)
{
    if (!enabled)
        return AcquireOutcome::NotNeeded;
    if (warp.holdsExt)
        return AcquireOutcome::AlreadyHeld;

    // FFZ over the SRP bitmask (paper Fig. 5a).
    const auto section = srp.ffz();
    if (!section)
        return AcquireOutcome::Blocked;

    srp.set(*section);
    warpStatus.set(warp.slot);
    lut[warp.slot] = static_cast<int>(*section);
    warp.holdsExt = true;
    warp.srpSection = static_cast<int>(*section);
    return AcquireOutcome::Acquired;
}

void
RegMutexAllocator::release(SimWarp &warp)
{
    if (!enabled || !warp.holdsExt)
        return;  // redundant release: no effect (paper Sec. III)
    const std::size_t section = static_cast<std::size_t>(lut[warp.slot]);
    srp.unset(section);
    warpStatus.unset(warp.slot);
    lut[warp.slot] = -1;
    warp.holdsExt = false;
    warp.srpSection = -1;
    if (pendingShrink > 0) {
        // A deferred fault-injected revocation claims the section the
        // moment it frees: nothing is released to waiters.
        srp.set(section);
        --pendingShrink;
        ++shrunk;
        return;
    }
    freed = true;
}

int
RegMutexAllocator::faultShrinkCapacity(int amount)
{
    if (!enabled || amount <= 0)
        return 0;
    const int revocable = sections - shrunk - pendingShrink;
    const int target = std::min(amount, revocable);
    int reserved = 0;
    // Free sections are revoked on the spot (their bitmask bit is
    // pre-set like the beyond-capacity bits)...
    for (int s = sections - 1; s >= 0 && reserved < target; --s) {
        const std::size_t bit = static_cast<std::size_t>(s);
        if (!srp.test(bit)) {
            srp.set(bit);
            ++shrunk;
            ++reserved;
        }
    }
    // ...held sections are revoked as their holders release.
    pendingShrink += target - reserved;
    return target;
}

void
RegMutexAllocator::onWarpExit(SimWarp &warp)
{
    release(warp);
}

bool
RegMutexAllocator::consumeFreedFlag()
{
    const bool f = freed;
    freed = false;
    return f;
}

RegisterMapper
RegMutexAllocator::makeMapper() const
{
    if (!enabled)
        return RegisterMapper::baseline(totalPacks, fallbackCoeff);
    return RegisterMapper::regmutex(totalPacks, bs, es, srpOffsetPacks,
                                    sections);
}

int
RegMutexAllocator::lutEntry(int slot) const
{
    panicIf(slot < 0 || slot >= static_cast<int>(lut.size()),
            "RegMutexAllocator::lutEntry: slot out of range");
    return lut[slot];
}

bool
RegMutexAllocator::faultCorruptState()
{
    if (!enabled || sections <= 0)
        return false;
    flipBitZero(srp);
    return true;
}

void
RegMutexAllocator::saveState(SnapshotWriter &w) const
{
    // Static configuration (enabled/bs/es/sections/...) is recomputed
    // by prepare() on restore; only mutable state is serialized.
    w.bitmask(srp);
    w.bitmask(warpStatus);
    w.u32(static_cast<std::uint32_t>(lut.size()));
    for (const int entry : lut)
        w.i32(entry);
    w.boolean(freed);
    w.i32(shrunk);
    w.i32(pendingShrink);
}

void
RegMutexAllocator::restoreState(SnapshotReader &r)
{
    srp = r.bitmask();
    warpStatus = r.bitmask();
    const std::uint32_t n = r.u32();
    lut.assign(n, -1);
    for (std::uint32_t i = 0; i < n; ++i)
        lut[i] = r.i32();
    freed = r.boolean();
    shrunk = r.i32();
    pendingShrink = r.i32();
}

void
RegMutexAllocator::auditInvariants(const WarpStore &warps,
                                   bool faults_active,
                                   std::vector<std::string> &violations) const
{
    if (!enabled)
        return;

    const auto fail = [&](const std::string &line) {
        violations.push_back("regmutex: " + line);
    };

    // Bits beyond the section count are hardware-pre-set and must stay.
    for (std::size_t s = static_cast<std::size_t>(sections);
         s < srp.size(); ++s) {
        if (!srp.test(s)) {
            fail("beyond-capacity SRP bit " + std::to_string(s) +
                 " is clear");
        }
    }

    // Per-warp ownership vs. the hardware structures (Fig. 4): the
    // warp-status bit, the LUT entry and the SRP bit must agree, and
    // no SRP section may appear in two LUT entries.
    std::vector<int> section_owner(static_cast<std::size_t>(sections), -1);
    int held_warps = 0;
    for (int i = 0; i < warps.numSlots(); ++i) {
        const SimWarp &warp = warps.warp(i);
        const std::size_t slot = static_cast<std::size_t>(i);
        if (slot >= lut.size())
            continue;
        if (warps.resident(i) && warp.holdsExt) {
            ++held_warps;
            const int section = lut[slot];
            if (!warpStatus.test(slot)) {
                fail("warp " + std::to_string(i) +
                     " holds an extended set but its status bit is clear");
            }
            if (section < 0 || section >= sections) {
                fail("warp " + std::to_string(i) +
                     " holds an extended set but LUT entry is " +
                     std::to_string(section));
                continue;
            }
            if (warp.srpSection != section) {
                fail("warp " + std::to_string(i) +
                     " srpSection " + std::to_string(warp.srpSection) +
                     " disagrees with LUT entry " + std::to_string(section));
            }
            if (!srp.test(static_cast<std::size_t>(section))) {
                fail("section " + std::to_string(section) + " held by warp " +
                     std::to_string(i) + " but its SRP bit is clear");
            }
            const int other = section_owner[static_cast<std::size_t>(section)];
            if (other >= 0) {
                fail("section " + std::to_string(section) +
                     " has two holders: warps " + std::to_string(other) +
                     " and " + std::to_string(i));
            }
            section_owner[static_cast<std::size_t>(section)] = i;
        } else {
            if (warpStatus.test(slot)) {
                fail("warp " + std::to_string(i) +
                     " holds no extended set but its status bit is set");
            }
            if (lut[slot] != -1) {
                fail("warp " + std::to_string(i) +
                     " holds no extended set but LUT entry is " +
                     std::to_string(lut[slot]));
            }
        }
    }

    // Conservation: every busy SRP bit is either held by exactly one
    // warp or permanently revoked by a shrink fault. Never gated on
    // faults — an injected corruption must be caught here.
    int busy = 0;
    for (int s = 0; s < sections; ++s) {
        if (srp.test(static_cast<std::size_t>(s)))
            ++busy;
    }
    if (static_cast<int>(warpStatus.count()) != held_warps) {
        fail("warp-status population " + std::to_string(warpStatus.count()) +
             " != warps holding extended sets " + std::to_string(held_warps));
    }
    if (busy != held_warps + shrunk) {
        std::ostringstream os;
        os << "SRP conservation: " << busy << " busy sections != "
           << held_warps << " held + " << shrunk << " revoked (capacity "
           << sections << ", pending revocations " << pendingShrink << ")";
        fail(os.str());
    }
    if (shrunk < 0 || pendingShrink < 0 || shrunk + pendingShrink > sections)
        fail("shrink accounting out of range");

    // Liveness: a warp parked in WaitAcquire while a section sits free
    // is a missed wake-up. Fault plans may legitimately strand waiters
    // (revoked capacity), so this one is gated.
    if (!faults_active) {
        const int free_sections = sections - held_warps - shrunk;
        if (free_sections > 0) {
            for (int i = 0; i < warps.numSlots(); ++i) {
                if (warps.resident(i) &&
                    warps.state(i) == WarpState::WaitAcquire) {
                    fail("warp " + std::to_string(i) +
                         " waits on acquire while " +
                         std::to_string(free_sections) +
                         " sections are free");
                }
            }
        }
    }
}

void
PairedRegMutexAllocator::prepare(const GpuConfig &config,
                                 const Program &program)
{
    enabled = program.regmutex.enabled();
    totalPacks = config.registersPerSm / config.warpSize;
    freed = false;

    if (!enabled) {
        fallbackCoeff = roundRegs(config, program.info.numRegs);
        const Occupancy occ = computeOccupancy(
            config, fallbackCoeff, program.info.ctaThreads,
            program.info.sharedBytesPerCta);
        maxCtas = occ.ctasPerSm;
        bs = fallbackCoeff;
        es = 0;
        return;
    }

    bs = program.regmutex.baseRegs;
    es = program.regmutex.extRegs;

    // Each pair of warps owns 2|Bs| + |Es| per-thread registers.
    const int warps_per_cta = config.warpsPerCta(program.info.ctaThreads);
    const Occupancy other = computeOccupancy(
        config, 0, program.info.ctaThreads,
        program.info.sharedBytesPerCta);
    int ctas = other.ctasPerSm;
    while (ctas > 0) {
        const int warps = ctas * warps_per_cta;
        const int used_pairs = (warps + 1) / 2;
        const int regs = (warps * bs + used_pairs * es) * config.warpSize;
        if (regs <= config.registersPerSm)
            break;
        --ctas;
    }
    fatalIf(ctas <= 0,
            "PairedRegMutexAllocator: kernel '", program.info.name,
            "' cannot fit one CTA");
    maxCtas = ctas;
    residentWarpCap = ctas * warps_per_cta;
    pairs = (residentWarpCap + 1) / 2;
    srpOffsetPacks = residentWarpCap * bs;
    pairHeld = Bitmask(config.maxWarpsPerSm / 2);
}

AcquireOutcome
PairedRegMutexAllocator::acquire(SimWarp &warp)
{
    if (!enabled)
        return AcquireOutcome::NotNeeded;
    if (warp.holdsExt)
        return AcquireOutcome::AlreadyHeld;

    const std::size_t pair = static_cast<std::size_t>(warp.slot) / 2;
    if (pairHeld.test(pair))
        return AcquireOutcome::Blocked;  // the partner holds the set

    pairHeld.set(pair);
    warp.holdsExt = true;
    warp.srpSection = static_cast<int>(pair);
    return AcquireOutcome::Acquired;
}

void
PairedRegMutexAllocator::release(SimWarp &warp)
{
    if (!enabled || !warp.holdsExt)
        return;
    pairHeld.unset(static_cast<std::size_t>(warp.slot) / 2);
    warp.holdsExt = false;
    warp.srpSection = -1;
    freed = true;
}

void
PairedRegMutexAllocator::onWarpExit(SimWarp &warp)
{
    release(warp);
}

bool
PairedRegMutexAllocator::consumeFreedFlag()
{
    const bool f = freed;
    freed = false;
    return f;
}

RegisterMapper
PairedRegMutexAllocator::makeMapper() const
{
    if (!enabled)
        return RegisterMapper::baseline(totalPacks, fallbackCoeff);
    return RegisterMapper::regmutex(totalPacks, bs, es, srpOffsetPacks,
                                    pairs);
}

bool
PairedRegMutexAllocator::faultCorruptState()
{
    if (!enabled || pairHeld.size() == 0)
        return false;
    flipBitZero(pairHeld);
    return true;
}

void
PairedRegMutexAllocator::saveState(SnapshotWriter &w) const
{
    w.bitmask(pairHeld);
    w.boolean(freed);
}

void
PairedRegMutexAllocator::restoreState(SnapshotReader &r)
{
    pairHeld = r.bitmask();
    freed = r.boolean();
}

void
PairedRegMutexAllocator::auditInvariants(
    const WarpStore &warps, bool faults_active,
    std::vector<std::string> &violations) const
{
    if (!enabled)
        return;

    const auto fail = [&](const std::string &line) {
        violations.push_back("regmutex-paired: " + line);
    };

    // Exactly one holder per held pair bit; holders agree with the mask.
    std::vector<int> pair_owner(pairHeld.size(), -1);
    int held_warps = 0;
    for (int slot = 0; slot < warps.numSlots(); ++slot) {
        const SimWarp &warp = warps.warp(slot);
        if (!warps.resident(slot) || !warp.holdsExt)
            continue;
        ++held_warps;
        const std::size_t pair = static_cast<std::size_t>(slot) / 2;
        if (pair >= pairHeld.size()) {
            fail("warp " + std::to_string(slot) +
                 " holds a set beyond the pair mask");
            continue;
        }
        if (warp.srpSection != static_cast<int>(pair)) {
            fail("warp " + std::to_string(slot) + " srpSection " +
                 std::to_string(warp.srpSection) + " != its pair " +
                 std::to_string(pair));
        }
        if (!pairHeld.test(pair)) {
            fail("warp " + std::to_string(slot) +
                 " holds pair " + std::to_string(pair) +
                 " but its bit is clear");
        }
        if (pair_owner[pair] >= 0) {
            fail("pair " + std::to_string(pair) + " has two holders: warps " +
                 std::to_string(pair_owner[pair]) + " and " +
                 std::to_string(slot));
        }
        pair_owner[pair] = slot;
    }

    // Conservation: the held-pair population must equal the number of
    // warps that believe they hold a set (never fault-gated).
    if (static_cast<int>(pairHeld.count()) != held_warps) {
        fail("pair-mask population " + std::to_string(pairHeld.count()) +
             " != warps holding extended sets " + std::to_string(held_warps));
    }

    // Liveness: a paired waiter is only legitimate while its partner
    // holds the shared set.
    if (!faults_active) {
        for (int slot = 0; slot < warps.numSlots(); ++slot) {
            if (!warps.resident(slot) ||
                warps.state(slot) != WarpState::WaitAcquire)
                continue;
            const std::size_t pair = static_cast<std::size_t>(slot) / 2;
            if (pair < pairHeld.size() && !pairHeld.test(pair)) {
                fail("warp " + std::to_string(slot) +
                     " waits on pair " + std::to_string(pair) +
                     " which nobody holds");
            }
        }
    }
}

} // namespace rm
