#ifndef RM_REGMUTEX_ALLOCATOR_HH
#define RM_REGMUTEX_ALLOCATOR_HH

/**
 * @file
 * The RegMutex register allocation policy (paper Sec. III-B): base
 * sets statically allocated per warp, extended sets acquired from the
 * Shared Register Pool at the issue stage via Find-First-Zero over the
 * SRP bitmask, with a warp-status bitmask and a warp-to-section lookup
 * table (Fig. 4/5). Includes the paired-warps specialization (Sec.
 * III-C) that shares one extended set between each pair of warps and
 * needs only an Nw/2-bit mask.
 */

#include <vector>

#include "common/bitmask.hh"
#include "sim/allocator.hh"
#include "sim/register_map.hh"

namespace rm {

/** Default (pooled) RegMutex allocator. */
class RegMutexAllocator : public RegisterAllocator
{
  public:
    std::string name() const override { return "regmutex"; }

    void prepare(const GpuConfig &config, const Program &program) override;
    int maxCtasByRegisters() const override { return maxCtas; }

    AcquireOutcome acquire(SimWarp &warp) override;
    void release(SimWarp &warp) override;
    void onWarpExit(SimWarp &warp) override;
    bool consumeFreedFlag() override;
    // The SRP handshake happens at the acquire directive (issue-stage
    // side effect), never as a per-instruction gate or priority bias.
    bool gatesIssue() const override { return false; }
    bool biasesPriority() const override { return false; }
    int srpSectionCount() const override { return sections - shrunk; }
    int faultShrinkCapacity(int amount) override;
    bool faultCorruptState() override;
    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;
    void auditInvariants(const WarpStore &warps,
                         bool faults_active,
                         std::vector<std::string> &violations) const override;

    /** Operand-collector mapping for this launch (paper Fig. 6b). */
    RegisterMapper makeMapper() const;

    int srpSections() const { return sections; }
    int baseRegs() const { return bs; }
    int extRegs() const { return es; }

    /** SRP bitmask (bits beyond the section count are pre-set). */
    const Bitmask &srpBitmask() const { return srp; }
    const Bitmask &warpStatusBitmask() const { return warpStatus; }
    /** LUT entry (acquired section) of a warp slot; -1 when none. */
    int lutEntry(int slot) const;

  private:
    bool enabled = false;
    int bs = 0;
    int es = 0;
    int maxCtas = 0;
    int sections = 0;
    int totalPacks = 0;
    int srpOffsetPacks = 0;
    int residentWarpCap = 0;
    int fallbackCoeff = 0;  ///< baseline coefficient when disabled
    Bitmask srp;
    Bitmask warpStatus;
    std::vector<int> lut;
    bool freed = false;
    // Fault injection (faultShrinkCapacity): sections already revoked
    // and revocations still waiting for a holder's release.
    int shrunk = 0;
    int pendingShrink = 0;
};

/** Paired-warps specialization (Sec. III-C). */
class PairedRegMutexAllocator : public RegisterAllocator
{
  public:
    std::string name() const override { return "regmutex-paired"; }

    void prepare(const GpuConfig &config, const Program &program) override;
    int maxCtasByRegisters() const override { return maxCtas; }

    AcquireOutcome acquire(SimWarp &warp) override;
    void release(SimWarp &warp) override;
    void onWarpExit(SimWarp &warp) override;
    bool consumeFreedFlag() override;
    // Pair-granularity SRP handshake: same acquire-directive contract
    // as RegMutexAllocator, so no per-instruction gate either.
    bool gatesIssue() const override { return false; }
    bool biasesPriority() const override { return false; }
    int srpSectionCount() const override { return pairs; }
    bool faultCorruptState() override;
    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;
    void auditInvariants(const WarpStore &warps,
                         bool faults_active,
                         std::vector<std::string> &violations) const override;

    /** Pair section mapping: each pair owns a fixed SRP slice. */
    RegisterMapper makeMapper() const;

    int baseRegs() const { return bs; }
    int extRegs() const { return es; }
    int numPairs() const { return pairs; }

  private:
    bool enabled = false;
    int bs = 0;
    int es = 0;
    int maxCtas = 0;
    int pairs = 0;
    int totalPacks = 0;
    int srpOffsetPacks = 0;
    int residentWarpCap = 0;
    int fallbackCoeff = 0;
    Bitmask pairHeld;  ///< Nw/2 bits: extended set of pair p in use
    bool freed = false;
};

} // namespace rm

#endif // RM_REGMUTEX_ALLOCATOR_HH
