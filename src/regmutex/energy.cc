#include "regmutex/energy.hh"

#include <cmath>

#include "common/errors.hh"

namespace rm {

double
accessScale(const EnergyParams &params, int bytes)
{
    fatalIf(bytes <= 0, "accessScale: non-positive file size");
    return std::sqrt(static_cast<double>(bytes) /
                     params.referenceBytes);
}

double
leakScale(const EnergyParams &params, int bytes)
{
    fatalIf(bytes <= 0, "leakScale: non-positive file size");
    return static_cast<double>(bytes) / params.referenceBytes;
}

EnergyReport
estimateEnergy(const GpuConfig &config, const SimStats &stats,
               const EnergyParams &params)
{
    const int bytes = config.registersPerSm * 4;
    EnergyReport report;
    // ~3 register-pack accesses per issued instruction: two operand
    // reads plus one writeback through the operand collector.
    report.dynamicEnergy = 3.0 * static_cast<double>(stats.instructions) *
                           params.accessEnergy *
                           accessScale(params, bytes);
    report.leakageEnergy = static_cast<double>(stats.cycles) *
                           params.leakPerCycle * leakScale(params, bytes);
    report.directiveEnergy =
        static_cast<double>(stats.acquireAttempts + stats.releases) *
        params.directiveEnergy;
    return report;
}

} // namespace rm
