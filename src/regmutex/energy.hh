#ifndef RM_REGMUTEX_ENERGY_HH
#define RM_REGMUTEX_ENERGY_HH

/**
 * @file
 * Register-file energy model. The paper motivates RegMutex partly
 * through cost ("approximately the same performance with a smaller
 * hardware register file... higher performance per dollar") and cites
 * GPU-Shrink's 20%/30% dynamic/overall register-file power savings
 * from halving the file. This module provides a first-order
 * access-energy + leakage model so the down-sizing experiments can
 * report energy alongside cycles.
 *
 * Model: E = accesses x E_access(size) + cycles x P_leak(size)
 * with access energy and leakage scaling with capacity (linear
 * leakage; square-root access energy per the usual SRAM wordline/
 * bitline scaling), normalized to the 128 KB Fermi file.
 */

#include <cstdint>

#include "sim/config.hh"
#include "sim/stats.hh"

namespace rm {

/** Energy-model parameters (normalized units per the file comment). */
struct EnergyParams
{
    /** Reference register file size (bytes) the units normalize to. */
    int referenceBytes = 131072;
    /** Energy per register-pack access at the reference size. */
    double accessEnergy = 1.0;
    /** Leakage power per cycle at the reference size. */
    double leakPerCycle = 0.15;
    /** Extra energy per RegMutex acquire/release (bitmask + LUT). */
    double directiveEnergy = 0.05;
};

/** Breakdown of a run's register-file energy. */
struct EnergyReport
{
    double dynamicEnergy = 0.0;
    double leakageEnergy = 0.0;
    double directiveEnergy = 0.0;

    double total() const
    {
        return dynamicEnergy + leakageEnergy + directiveEnergy;
    }
};

/**
 * Estimate the register-file energy of a finished run. Dynamic energy
 * counts ~3 register-pack accesses per issued instruction (two reads,
 * one write — the operand-collector traffic); leakage integrates over
 * the run's cycles at the configured file size.
 */
EnergyReport estimateEnergy(const GpuConfig &config, const SimStats &stats,
                            const EnergyParams &params = {});

/** Access-energy scale factor for a file of @p bytes. */
double accessScale(const EnergyParams &params, int bytes);

/** Leakage scale factor for a file of @p bytes. */
double leakScale(const EnergyParams &params, int bytes);

} // namespace rm

#endif // RM_REGMUTEX_ENERGY_HH
