#ifndef RM_REGMUTEX_HW_COST_HH
#define RM_REGMUTEX_HW_COST_HH

/**
 * @file
 * Hardware storage-cost model (paper Sec. III-B1 and Sec. IV-C).
 * RegMutex adds a warp-status bitmask (Nw bits), an SRP bitmask (Nw
 * bits) and a warp-to-section LUT (Nw x ceil(log2 Nw) bits) = 384 bits
 * at Nw = 48. Register File Virtualization needs a renaming table of
 * Nw x maxArchRegs x log2(physPacks) bits plus a physical-register
 * availability bitmask — more than 81x larger. The paired-warps
 * specialization needs only Nw/2 bits, more than 20x below default
 * RegMutex.
 */

namespace rm {

/** Storage breakdown in bits. */
struct StorageCost
{
    int warpStatusBits = 0;
    int srpBits = 0;
    int lutBits = 0;
    int renameTableBits = 0;
    int availabilityBits = 0;

    int
    totalBits() const
    {
        return warpStatusBits + srpBits + lutBits + renameTableBits +
               availabilityBits;
    }
};

/** Default RegMutex structures for @p nw resident warps. */
StorageCost regmutexStorage(int nw);

/** Paired-warps specialization: one bit per warp pair. */
StorageCost pairedStorage(int nw);

/**
 * Register File Virtualization (Jeon et al.): per-warp, per-arch-reg
 * renaming entries plus a physical availability mask (Release Flag
 * Cache excluded, as in the paper's accounting).
 */
StorageCost rfvStorage(int nw, int max_arch_regs, int phys_packs);

} // namespace rm

#endif // RM_REGMUTEX_HW_COST_HH
