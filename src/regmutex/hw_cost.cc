#include "regmutex/hw_cost.hh"

#include <bit>

#include "common/errors.hh"

namespace rm {

namespace {

int
ceilLog2(int x)
{
    panicIf(x <= 0, "ceilLog2 of non-positive value");
    return std::bit_width(static_cast<unsigned>(x - 1));
}

} // namespace

StorageCost
regmutexStorage(int nw)
{
    StorageCost cost;
    cost.warpStatusBits = nw;
    cost.srpBits = nw;
    cost.lutBits = nw * ceilLog2(nw);
    return cost;
}

StorageCost
pairedStorage(int nw)
{
    StorageCost cost;
    cost.srpBits = nw / 2;
    return cost;
}

StorageCost
rfvStorage(int nw, int max_arch_regs, int phys_packs)
{
    StorageCost cost;
    cost.renameTableBits = nw * max_arch_regs * ceilLog2(phys_packs);
    cost.availabilityBits = phys_packs;
    return cost;
}

} // namespace rm
