#include "isa/asm_parser.hh"

#include <cctype>
#include <limits>
#include <map>
#include <sstream>
#include <vector>

#include "common/errors.hh"
#include "isa/disasm.hh"

namespace rm {

namespace {

/** Mnemonic -> opcode table (inverse of opcodeName). */
const std::map<std::string, Opcode> &
mnemonics()
{
    static const std::map<std::string, Opcode> table = [] {
        std::map<std::string, Opcode> t;
        for (int o = 0; o <= static_cast<int>(Opcode::Nop); ++o) {
            const Opcode op = static_cast<Opcode>(o);
            t.emplace(opcodeName(op), op);
        }
        return t;
    }();
    return table;
}

/** Comparison mnemonic -> selector. */
const std::map<std::string, CmpOp> &
cmpTable()
{
    static const std::map<std::string, CmpOp> table = {
        {"eq", CmpOp::Eq}, {"ne", CmpOp::Ne}, {"lt", CmpOp::Lt},
        {"le", CmpOp::Le}, {"gt", CmpOp::Gt}, {"ge", CmpOp::Ge},
    };
    return table;
}

std::string
stripComment(std::string line)
{
    for (const char *marker : {"//", "#"}) {
        const auto pos = line.find(marker);
        if (pos != std::string::npos)
            line.erase(pos);
    }
    return line;
}

std::string
trim(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

/** Split an operand string on commas and whitespace. */
std::vector<std::string>
operandTokens(const std::string &text)
{
    std::vector<std::string> tokens;
    std::string current;
    for (char c : text) {
        if (c == ',' || std::isspace(static_cast<unsigned char>(c))) {
            if (!current.empty()) {
                tokens.push_back(current);
                current.clear();
            }
        } else {
            current.push_back(c);
        }
    }
    if (!current.empty())
        tokens.push_back(current);
    return tokens;
}

std::int64_t
parseInt(const std::string &token, int line_no)
{
    std::size_t used = 0;
    std::int64_t value = 0;
    try {
        value = std::stoll(token, &used);
    } catch (const std::exception &) {
        fatal("asm line ", line_no, ": expected integer, got '", token,
              "'");
    }
    fatalIf(used != token.size(), "asm line ", line_no,
            ": trailing characters in integer '", token, "'");
    return value;
}

/**
 * parseInt with an inclusive range check. Every narrowing cast in the
 * parser goes through here: a hostile 'r65537' must be a line-numbered
 * error, not a silent wrap to r1 through the uint16_t RegId.
 */
std::int64_t
parseBounded(const std::string &token, int line_no, std::int64_t lo,
             std::int64_t hi, const char *what)
{
    const std::int64_t value = parseInt(token, line_no);
    fatalIf(value < lo || value > hi, "asm line ", line_no, ": ", what,
            " ", value, " outside [", lo, ", ", hi, "]");
    return value;
}

bool
isLabelDef(const std::string &line)
{
    if (line.size() < 2 || line.back() != ':')
        return false;
    for (std::size_t i = 0; i + 1 < line.size(); ++i) {
        const char c = line[i];
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
            c != '$' && c != '.') {
            return false;
        }
    }
    return true;
}

} // namespace

Program
parseProgram(const std::string &source)
{
    KernelInfo info;
    RegMutexInfo regmutex;

    struct Line
    {
        int number;
        std::string text;
    };
    std::vector<Line> lines;
    {
        std::istringstream stream(source);
        std::string raw;
        int number = 0;
        while (std::getline(stream, raw)) {
            ++number;
            const std::string text = trim(stripComment(raw));
            if (!text.empty())
                lines.push_back({number, text});
        }
    }

    // Pass 1: directives and label addresses.
    std::map<std::string, int> labels;
    int inst_index = 0;
    for (const auto &line : lines) {
        if (line.text[0] == '.')
            continue;
        if (isLabelDef(line.text)) {
            const std::string name =
                line.text.substr(0, line.text.size() - 1);
            fatalIf(labels.count(name), "asm line ", line.number,
                    ": label '", name, "' defined twice");
            labels[name] = inst_index;
        } else {
            ++inst_index;
        }
    }

    // Pass 2: emit.
    std::vector<Instruction> code;
    for (const auto &line : lines) {
        if (line.text[0] == '.') {
            std::istringstream directive(line.text);
            std::string key;
            directive >> key;
            std::string value;
            std::getline(directive, value);
            value = trim(value);
            if (key == ".kernel") {
                info.name = value;
            } else if (key == ".regs") {
                info.numRegs = static_cast<int>(
                    parseBounded(value, line.number, 0,
                                 std::numeric_limits<int>::max(),
                                 "directive value"));
            } else if (key == ".ctaThreads") {
                info.ctaThreads = static_cast<int>(
                    parseBounded(value, line.number, 0,
                                 std::numeric_limits<int>::max(),
                                 "directive value"));
            } else if (key == ".gridCtas") {
                info.gridCtas = static_cast<int>(
                    parseBounded(value, line.number, 0,
                                 std::numeric_limits<int>::max(),
                                 "directive value"));
            } else if (key == ".sharedBytes") {
                info.sharedBytesPerCta = static_cast<int>(
                    parseBounded(value, line.number, 0,
                                 std::numeric_limits<int>::max(),
                                 "directive value"));
            } else if (key == ".baseRegs") {
                regmutex.baseRegs = static_cast<int>(
                    parseBounded(value, line.number, 0,
                                 std::numeric_limits<int>::max(),
                                 "directive value"));
            } else if (key == ".extRegs") {
                regmutex.extRegs = static_cast<int>(
                    parseBounded(value, line.number, 0,
                                 std::numeric_limits<int>::max(),
                                 "directive value"));
            } else if (key.rfind(".param", 0) == 0 &&
                       key.size() == 7 && key[6] >= '0' &&
                       key[6] <= '3') {
                info.params[key[6] - '0'] =
                    parseInt(value, line.number);
            } else {
                fatal("asm line ", line.number, ": unknown directive '",
                      key, "'");
            }
            continue;
        }
        if (isLabelDef(line.text))
            continue;

        // Mnemonic (possibly with a .cmp suffix for setp).
        std::istringstream words(line.text);
        std::string mnemonic;
        words >> mnemonic;
        std::string rest;
        std::getline(words, rest);

        Instruction inst;
        auto found = mnemonics().find(mnemonic);
        if (found != mnemonics().end()) {
            inst.op = found->second;
        } else if (mnemonic.rfind("setp.", 0) == 0) {
            inst.op = Opcode::Setp;
            const std::string cmp = mnemonic.substr(5);
            auto c = cmpTable().find(cmp);
            fatalIf(c == cmpTable().end(), "asm line ", line.number,
                    ": unknown comparison '", cmp, "'");
            inst.imm = static_cast<std::int64_t>(c->second);
        } else {
            fatal("asm line ", line.number, ": unknown mnemonic '",
                  mnemonic, "'");
        }

        // Operands.
        const auto tokens = operandTokens(rest);
        const bool wants_dst = writesDst(inst.op);
        const int wants_srcs = numSourceOperands(inst.op);
        int regs_seen = 0;
        bool target_next = false;
        bool have_target = false;
        bool have_imm = inst.op == Opcode::Setp;  // carried in mnemonic
        for (const auto &token : tokens) {
            if (target_next) {
                auto label = labels.find(token);
                inst.target =
                    label != labels.end()
                        ? label->second
                        : static_cast<std::int32_t>(parseBounded(
                              token, line.number,
                              std::numeric_limits<std::int32_t>::min(),
                              std::numeric_limits<std::int32_t>::max(),
                              "branch target"));
                target_next = false;
                have_target = true;
            } else if (token == "->") {
                target_next = true;
            } else if (token.size() > 1 && token[0] == 'r' &&
                       std::isdigit(
                           static_cast<unsigned char>(token[1]))) {
                // kNoReg itself is the "no operand" sentinel, so the
                // largest spellable register is one below it.
                const auto reg = static_cast<RegId>(
                    parseBounded(token.substr(1), line.number, 0,
                                 kNoReg - 1, "register index"));
                if (wants_dst && regs_seen == 0) {
                    inst.dst = reg;
                } else {
                    const int slot =
                        regs_seen - (wants_dst ? 1 : 0);
                    fatalIf(slot >= wants_srcs, "asm line ",
                            line.number, ": too many registers");
                    inst.srcs[slot] = reg;
                    inst.numSrcs =
                        static_cast<std::uint8_t>(slot + 1);
                }
                ++regs_seen;
            } else if (token.rfind("%sreg", 0) == 0) {
                inst.imm = parseInt(token.substr(5), line.number);
                have_imm = true;
            } else if (token[0] == '+' || token[0] == '-' ||
                       std::isdigit(
                           static_cast<unsigned char>(token[0]))) {
                inst.imm = parseInt(token, line.number);
                have_imm = true;
            } else {
                fatal("asm line ", line.number,
                      ": unexpected operand '", token, "'");
            }
        }
        fatalIf(target_next, "asm line ", line.number,
                ": '->' without a target");
        fatalIf((inst.op == Opcode::MovImm ||
                 inst.op == Opcode::ReadSreg) &&
                !have_imm,
                "asm line ", line.number, ": ", opcodeName(inst.op),
                " needs an immediate operand");
        fatalIf(inst.isBranch() && !have_target, "asm line ",
                line.number, ": branch without a target");
        fatalIf(regs_seen != (wants_dst ? 1 : 0) + wants_srcs,
                "asm line ", line.number, ": ", opcodeName(inst.op),
                " expects ", (wants_dst ? 1 : 0) + wants_srcs,
                " register operands, got ", regs_seen);
        code.push_back(inst);
    }

    Program program;
    program.info = info;
    program.regmutex = regmutex;
    program.code = std::move(code);
    if (program.info.numRegs == 0)
        program.info.numRegs = program.maxReferencedRegs();
    program.verify();
    return program;
}

std::string
emitProgram(const Program &program)
{
    std::ostringstream os;
    os << ".kernel " << program.info.name << "\n"
       << ".regs " << program.info.numRegs << "\n"
       << ".ctaThreads " << program.info.ctaThreads << "\n"
       << ".gridCtas " << program.info.gridCtas << "\n"
       << ".sharedBytes " << program.info.sharedBytesPerCta << "\n";
    for (int i = 0; i < 4; ++i) {
        if (program.info.params[i] != 0)
            os << ".param" << i << " " << program.info.params[i]
               << "\n";
    }
    if (program.regmutex.enabled()) {
        os << ".baseRegs " << program.regmutex.baseRegs << "\n"
           << ".extRegs " << program.regmutex.extRegs << "\n";
    }

    // Label every branch target.
    std::map<int, std::string> labels;
    for (const auto &inst : program.code) {
        if (inst.isBranch() && !labels.count(inst.target)) {
            // Built via insert: "L" + to_string trips a GCC 12
            // -Wrestrict false positive at -O2 (GCC PR 105651).
            std::string name = std::to_string(inst.target);
            name.insert(0, 1, 'L');
            labels[inst.target] = std::move(name);
        }
    }

    for (std::size_t i = 0; i < program.code.size(); ++i) {
        auto label = labels.find(static_cast<int>(i));
        if (label != labels.end())
            os << label->second << ":\n";
        std::string text = disassemble(program.code[i]);
        if (program.code[i].isBranch()) {
            const auto arrow = text.rfind("-> ");
            if (arrow != std::string::npos)
                text = text.substr(0, arrow + 3) +
                       labels.at(program.code[i].target);
        }
        os << "    " << text << "\n";
    }
    return os.str();
}

} // namespace rm
