#ifndef RM_ISA_BUILDER_HH
#define RM_ISA_BUILDER_HH

/**
 * @file
 * ProgramBuilder: a small assembler DSL with forward-referencing labels
 * used by the synthetic workload generators and the tests to construct
 * kernels. finalize() resolves labels and verifies the program.
 */

#include <cstdint>
#include <vector>

#include "isa/program.hh"

namespace rm {

/**
 * Incremental kernel assembler. Emit instructions in order; branch
 * targets are labels that may be bound before or after use.
 */
class ProgramBuilder
{
  public:
    /** Opaque label handle. */
    using Label = int;

    explicit ProgramBuilder(KernelInfo info);

    /** Create a fresh, unbound label. */
    Label newLabel();

    /** Bind @p label to the next emitted instruction. */
    void bind(Label label);

    /** Index the next emitted instruction will have. */
    std::size_t nextIndex() const { return code.size(); }

    // --- Integer ALU ---
    void iadd(RegId d, RegId a, RegId b) { emit3(Opcode::IAdd, d, a, b); }
    void isub(RegId d, RegId a, RegId b) { emit3(Opcode::ISub, d, a, b); }
    void imul(RegId d, RegId a, RegId b) { emit3(Opcode::IMul, d, a, b); }
    void imin(RegId d, RegId a, RegId b) { emit3(Opcode::IMin, d, a, b); }
    void imax(RegId d, RegId a, RegId b) { emit3(Opcode::IMax, d, a, b); }
    void band(RegId d, RegId a, RegId b) { emit3(Opcode::And, d, a, b); }
    void bor(RegId d, RegId a, RegId b) { emit3(Opcode::Or, d, a, b); }
    void bxor(RegId d, RegId a, RegId b) { emit3(Opcode::Xor, d, a, b); }
    void shl(RegId d, RegId a, RegId b) { emit3(Opcode::Shl, d, a, b); }
    void shr(RegId d, RegId a, RegId b) { emit3(Opcode::Shr, d, a, b); }
    void imad(RegId d, RegId a, RegId b, RegId c);

    // --- Floating point / SFU ---
    void fadd(RegId d, RegId a, RegId b) { emit3(Opcode::FAdd, d, a, b); }
    void fmul(RegId d, RegId a, RegId b) { emit3(Opcode::FMul, d, a, b); }
    void ffma(RegId d, RegId a, RegId b, RegId c);
    void frcp(RegId d, RegId a) { emit2(Opcode::FRcp, d, a); }
    void fsqrt(RegId d, RegId a) { emit2(Opcode::FSqrt, d, a); }

    // --- Data movement ---
    void mov(RegId d, RegId a) { emit2(Opcode::Mov, d, a); }
    void movImm(RegId d, std::int64_t value);
    void readSreg(RegId d, SpecialReg sreg);
    void sel(RegId d, RegId cond, RegId a, RegId b);
    void setp(RegId d, CmpOp cmp, RegId a, RegId b);

    // --- Memory ---
    void ldGlobal(RegId d, RegId addr, std::int64_t offset = 0);
    void stGlobal(RegId addr, RegId value, std::int64_t offset = 0);
    void ldShared(RegId d, RegId addr, std::int64_t offset = 0);
    void stShared(RegId addr, RegId value, std::int64_t offset = 0);

    // --- Control flow ---
    void bra(Label label);
    void braNz(RegId cond, Label label);
    void braZ(RegId cond, Label label);
    void bar();
    void exitKernel();
    void nop();

    // --- RegMutex directives (normally injected by the compiler) ---
    void regAcquire();
    void regRelease();

    /**
     * Resolve labels, set numRegs to at least the maximum referenced
     * register, verify, and return the finished program. The builder
     * must not be reused afterwards.
     */
    Program finalize();

  private:
    KernelInfo info;
    std::vector<Instruction> code;
    /** label -> bound instruction index, or -1 while unbound. */
    std::vector<std::int32_t> labelTargets;
    /** (instruction index, label) pairs awaiting resolution. */
    std::vector<std::pair<std::size_t, Label>> fixups;
    bool finalized = false;

    Instruction &emit(Opcode op);
    void emit2(Opcode op, RegId d, RegId a);
    void emit3(Opcode op, RegId d, RegId a, RegId b);
    void checkLabel(Label label) const;
};

} // namespace rm

#endif // RM_ISA_BUILDER_HH
