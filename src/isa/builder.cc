#include "isa/builder.hh"

#include <algorithm>

#include "common/errors.hh"

namespace rm {

ProgramBuilder::ProgramBuilder(KernelInfo kernel_info)
    : info(std::move(kernel_info))
{}

ProgramBuilder::Label
ProgramBuilder::newLabel()
{
    labelTargets.push_back(-1);
    return static_cast<Label>(labelTargets.size() - 1);
}

void
ProgramBuilder::checkLabel(Label label) const
{
    fatalIf(label < 0 ||
            label >= static_cast<Label>(labelTargets.size()),
            "ProgramBuilder: unknown label ", label);
}

void
ProgramBuilder::bind(Label label)
{
    checkLabel(label);
    fatalIf(labelTargets[label] != -1,
            "ProgramBuilder: label ", label, " bound twice");
    labelTargets[label] = static_cast<std::int32_t>(code.size());
}

Instruction &
ProgramBuilder::emit(Opcode op)
{
    panicIf(finalized, "ProgramBuilder used after finalize()");
    code.emplace_back();
    code.back().op = op;
    return code.back();
}

void
ProgramBuilder::emit2(Opcode op, RegId d, RegId a)
{
    Instruction &inst = emit(op);
    inst.dst = d;
    inst.srcs[0] = a;
    inst.numSrcs = 1;
}

void
ProgramBuilder::emit3(Opcode op, RegId d, RegId a, RegId b)
{
    Instruction &inst = emit(op);
    inst.dst = d;
    inst.srcs[0] = a;
    inst.srcs[1] = b;
    inst.numSrcs = 2;
}

void
ProgramBuilder::imad(RegId d, RegId a, RegId b, RegId c)
{
    Instruction &inst = emit(Opcode::IMad);
    inst.dst = d;
    inst.srcs = {a, b, c};
    inst.numSrcs = 3;
}

void
ProgramBuilder::ffma(RegId d, RegId a, RegId b, RegId c)
{
    Instruction &inst = emit(Opcode::FFma);
    inst.dst = d;
    inst.srcs = {a, b, c};
    inst.numSrcs = 3;
}

void
ProgramBuilder::movImm(RegId d, std::int64_t value)
{
    Instruction &inst = emit(Opcode::MovImm);
    inst.dst = d;
    inst.imm = value;
}

void
ProgramBuilder::readSreg(RegId d, SpecialReg sreg)
{
    Instruction &inst = emit(Opcode::ReadSreg);
    inst.dst = d;
    inst.imm = static_cast<std::int64_t>(sreg);
}

void
ProgramBuilder::sel(RegId d, RegId cond, RegId a, RegId b)
{
    Instruction &inst = emit(Opcode::Sel);
    inst.dst = d;
    inst.srcs = {cond, a, b};
    inst.numSrcs = 3;
}

void
ProgramBuilder::setp(RegId d, CmpOp cmp, RegId a, RegId b)
{
    Instruction &inst = emit(Opcode::Setp);
    inst.dst = d;
    inst.srcs[0] = a;
    inst.srcs[1] = b;
    inst.numSrcs = 2;
    inst.imm = static_cast<std::int64_t>(cmp);
}

void
ProgramBuilder::ldGlobal(RegId d, RegId addr, std::int64_t offset)
{
    Instruction &inst = emit(Opcode::LdGlobal);
    inst.dst = d;
    inst.srcs[0] = addr;
    inst.numSrcs = 1;
    inst.imm = offset;
}

void
ProgramBuilder::stGlobal(RegId addr, RegId value, std::int64_t offset)
{
    Instruction &inst = emit(Opcode::StGlobal);
    inst.srcs[0] = addr;
    inst.srcs[1] = value;
    inst.numSrcs = 2;
    inst.imm = offset;
}

void
ProgramBuilder::ldShared(RegId d, RegId addr, std::int64_t offset)
{
    Instruction &inst = emit(Opcode::LdShared);
    inst.dst = d;
    inst.srcs[0] = addr;
    inst.numSrcs = 1;
    inst.imm = offset;
}

void
ProgramBuilder::stShared(RegId addr, RegId value, std::int64_t offset)
{
    Instruction &inst = emit(Opcode::StShared);
    inst.srcs[0] = addr;
    inst.srcs[1] = value;
    inst.numSrcs = 2;
    inst.imm = offset;
}

void
ProgramBuilder::bra(Label label)
{
    checkLabel(label);
    emit(Opcode::Bra);
    fixups.emplace_back(code.size() - 1, label);
}

void
ProgramBuilder::braNz(RegId cond, Label label)
{
    checkLabel(label);
    Instruction &inst = emit(Opcode::BraNz);
    inst.srcs[0] = cond;
    inst.numSrcs = 1;
    fixups.emplace_back(code.size() - 1, label);
}

void
ProgramBuilder::braZ(RegId cond, Label label)
{
    checkLabel(label);
    Instruction &inst = emit(Opcode::BraZ);
    inst.srcs[0] = cond;
    inst.numSrcs = 1;
    fixups.emplace_back(code.size() - 1, label);
}

void
ProgramBuilder::bar()
{
    emit(Opcode::Bar);
}

void
ProgramBuilder::exitKernel()
{
    emit(Opcode::Exit);
}

void
ProgramBuilder::nop()
{
    emit(Opcode::Nop);
}

void
ProgramBuilder::regAcquire()
{
    emit(Opcode::RegAcquire);
}

void
ProgramBuilder::regRelease()
{
    emit(Opcode::RegRelease);
}

Program
ProgramBuilder::finalize()
{
    panicIf(finalized, "ProgramBuilder::finalize called twice");
    finalized = true;

    for (const auto &[index, label] : fixups) {
        fatalIf(labelTargets[label] == -1,
                "ProgramBuilder: label ", label, " used but never bound");
        code[index].target = labelTargets[label];
    }

    Program program;
    program.info = info;
    program.code = std::move(code);
    program.info.numRegs =
        std::max(program.info.numRegs, program.maxReferencedRegs());
    program.verify();
    return program;
}

} // namespace rm
