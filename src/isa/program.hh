#ifndef RM_ISA_PROGRAM_HH
#define RM_ISA_PROGRAM_HH

/**
 * @file
 * A kernel program: straight-line instruction vector with resolved
 * branch targets, plus the launch metadata (CTA shape, register and
 * shared memory demand) the occupancy calculator consumes.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace rm {

/**
 * Launch-time metadata for a kernel, mirroring what a CUDA binary
 * declares: resource demands and grid shape.
 */
struct KernelInfo
{
    std::string name = "kernel";
    /** Architected registers per thread the kernel works with. */
    int numRegs = 0;
    /** Threads per CTA; must be a multiple of the warp size. */
    int ctaThreads = 256;
    /** Shared memory bytes per CTA. */
    int sharedBytesPerCta = 0;
    /** Total CTAs in the grid. */
    int gridCtas = 1;
    /** Kernel parameter values exposed through SpecialReg::Param0..3. */
    std::int64_t params[4] = {0, 0, 0, 0};
};

/**
 * RegMutex compilation metadata attached to a transformed program.
 * A base/extended split of (0, 0) means "not transformed" (all
 * registers are base, no directives present).
 */
struct RegMutexInfo
{
    /** Base register set size |Bs| per thread; 0 when untransformed. */
    int baseRegs = 0;
    /** Extended register set size |Es| per thread; 0 when untransformed. */
    int extRegs = 0;

    bool enabled() const { return extRegs > 0; }
};

/**
 * A complete kernel: code + metadata. Programs are immutable once
 * verified; compiler passes produce new Program values.
 */
struct Program
{
    KernelInfo info;
    RegMutexInfo regmutex;
    std::vector<Instruction> code;

    std::size_t size() const { return code.size(); }

    /**
     * Structural verification: every register operand is within
     * info.numRegs, every branch target is a valid instruction index,
     * the program is non-empty and ends in a terminator, Setp selectors
     * and ReadSreg ids are valid, srcs agree with numSrcs. Throws
     * FatalError with a diagnostic on the first violation.
     */
    void verify() const;

    /**
     * Warp-level register demand per thread: maximum architected
     * register index referenced, plus one. verify() checks that this
     * does not exceed info.numRegs.
     */
    int maxReferencedRegs() const;
};

} // namespace rm

#endif // RM_ISA_PROGRAM_HH
