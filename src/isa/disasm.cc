#include "isa/disasm.hh"

#include <iomanip>
#include <sstream>

namespace rm {

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream os;
    os << opcodeName(inst.op);
    if (inst.op == Opcode::Setp)
        os << "." << cmpName(static_cast<CmpOp>(inst.imm));

    bool first = true;
    auto sep = [&]() -> std::ostream & {
        os << (first ? " " : ", ");
        first = false;
        return os;
    };

    if (inst.hasDst())
        sep() << "r" << inst.dst;
    for (int s = 0; s < inst.numSrcs; ++s)
        sep() << "r" << inst.srcs[s];

    switch (inst.op) {
      case Opcode::MovImm:
        sep() << inst.imm;
        break;
      case Opcode::ReadSreg:
        sep() << "%sreg" << inst.imm;
        break;
      case Opcode::LdGlobal:
      case Opcode::StGlobal:
      case Opcode::LdShared:
      case Opcode::StShared:
        if (inst.imm > 0)
            sep() << "+" << inst.imm;
        else if (inst.imm < 0)
            sep() << inst.imm;
        break;
      default:
        break;
    }

    if (inst.isBranch())
        sep() << "-> " << inst.target;
    return os.str();
}

std::string
disassemble(const Program &program)
{
    std::ostringstream os;
    os << "// kernel " << program.info.name
       << ": regs=" << program.info.numRegs
       << " ctaThreads=" << program.info.ctaThreads
       << " gridCtas=" << program.info.gridCtas;
    if (program.regmutex.enabled()) {
        os << " |Bs|=" << program.regmutex.baseRegs
           << " |Es|=" << program.regmutex.extRegs;
    }
    os << "\n";
    for (std::size_t i = 0; i < program.code.size(); ++i) {
        os << std::setw(5) << i << ": " << disassemble(program.code[i])
           << "\n";
    }
    return os.str();
}

} // namespace rm
