#include "isa/instruction.hh"

#include "common/errors.hh"

namespace rm {

bool
Instruction::isBranch() const
{
    return op == Opcode::Bra || op == Opcode::BraNz || op == Opcode::BraZ;
}

bool
Instruction::isConditionalBranch() const
{
    return op == Opcode::BraNz || op == Opcode::BraZ;
}

bool
Instruction::isTerminator() const
{
    return op == Opcode::Bra || op == Opcode::Exit;
}

bool
Instruction::isMemory() const
{
    return op == Opcode::LdGlobal || op == Opcode::StGlobal ||
           op == Opcode::LdShared || op == Opcode::StShared;
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::IAdd: return "iadd";
      case Opcode::ISub: return "isub";
      case Opcode::IMul: return "imul";
      case Opcode::IMad: return "imad";
      case Opcode::IMin: return "imin";
      case Opcode::IMax: return "imax";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::FAdd: return "fadd";
      case Opcode::FMul: return "fmul";
      case Opcode::FFma: return "ffma";
      case Opcode::FRcp: return "frcp";
      case Opcode::FSqrt: return "fsqrt";
      case Opcode::Mov: return "mov";
      case Opcode::MovImm: return "movi";
      case Opcode::ReadSreg: return "sreg";
      case Opcode::Sel: return "sel";
      case Opcode::Setp: return "setp";
      case Opcode::LdGlobal: return "ld.global";
      case Opcode::StGlobal: return "st.global";
      case Opcode::LdShared: return "ld.shared";
      case Opcode::StShared: return "st.shared";
      case Opcode::Bra: return "bra";
      case Opcode::BraNz: return "bra.nz";
      case Opcode::BraZ: return "bra.z";
      case Opcode::Exit: return "exit";
      case Opcode::Bar: return "bar.sync";
      case Opcode::RegAcquire: return "reg.acquire";
      case Opcode::RegRelease: return "reg.release";
      case Opcode::Nop: return "nop";
    }
    panic("opcodeName: unknown opcode ", static_cast<int>(op));
}

const char *
cmpName(CmpOp cmp)
{
    switch (cmp) {
      case CmpOp::Eq: return "eq";
      case CmpOp::Ne: return "ne";
      case CmpOp::Lt: return "lt";
      case CmpOp::Le: return "le";
      case CmpOp::Gt: return "gt";
      case CmpOp::Ge: return "ge";
    }
    panic("cmpName: unknown cmp ", static_cast<std::int64_t>(cmp));
}

/** Number of source operands each opcode requires. */
int
numSourceOperands(Opcode op)
{
    switch (op) {
      case Opcode::IAdd:
      case Opcode::ISub:
      case Opcode::IMul:
      case Opcode::IMin:
      case Opcode::IMax:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::FAdd:
      case Opcode::FMul:
      case Opcode::Setp:
        return 2;
      case Opcode::IMad:
      case Opcode::FFma:
      case Opcode::Sel:
        return 3;
      case Opcode::FRcp:
      case Opcode::FSqrt:
      case Opcode::Mov:
      case Opcode::LdGlobal:
      case Opcode::LdShared:
      case Opcode::BraNz:
      case Opcode::BraZ:
        return 1;
      case Opcode::StGlobal:
      case Opcode::StShared:
        return 2;
      case Opcode::MovImm:
      case Opcode::ReadSreg:
      case Opcode::Bra:
      case Opcode::Exit:
      case Opcode::Bar:
      case Opcode::RegAcquire:
      case Opcode::RegRelease:
      case Opcode::Nop:
        return 0;
    }
    panic("numSourceOperands: unknown opcode");
}

bool
writesDst(Opcode op)
{
    switch (op) {
      case Opcode::StGlobal:
      case Opcode::StShared:
      case Opcode::Bra:
      case Opcode::BraNz:
      case Opcode::BraZ:
      case Opcode::Exit:
      case Opcode::Bar:
      case Opcode::RegAcquire:
      case Opcode::RegRelease:
      case Opcode::Nop:
        return false;
      default:
        return true;
    }
}


} // namespace rm
