#ifndef RM_ISA_ASM_PARSER_HH
#define RM_ISA_ASM_PARSER_HH

/**
 * @file
 * Text assembler for the kernel ISA — the inverse of disasm.hh. Lets
 * kernels be written (and the disassembler's output be re-read) as
 * text:
 *
 *     // kernel example: regs=8 ctaThreads=64 gridCtas=2
 *     .kernel example
 *     .regs 8
 *     .ctaThreads 64
 *     .gridCtas 2
 *     .sharedBytes 0
 *     .param0 5
 *     start:
 *         movi r0, 10
 *     loop:
 *         movi r1, 1
 *         isub r0, r0, r1
 *         bra.nz r0, -> loop
 *         st.global r0, r1, +8
 *         exit
 *
 * Labels are `name:` lines; branch targets accept `-> label` or a raw
 * instruction index `-> 12` (as the disassembler prints). Directive
 * lines start with '.'; '//' and '#' start comments. parse() verifies
 * the program before returning and throws FatalError with a line
 * number on any malformed input.
 */

#include <string>

#include "isa/program.hh"

namespace rm {

/** Assemble @p source into a verified Program. */
Program parseProgram(const std::string &source);

/**
 * Render @p program as parseable text (directives + labeled code).
 * parseProgram(emitProgram(p)) reproduces p exactly (round-trip
 * property, tested).
 */
std::string emitProgram(const Program &program);

} // namespace rm

#endif // RM_ISA_ASM_PARSER_HH
