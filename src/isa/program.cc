#include "isa/program.hh"

#include <algorithm>

#include "common/errors.hh"

namespace rm {


void
Program::verify() const
{
    fatalIf(code.empty(), "Program '", info.name, "' is empty");
    fatalIf(info.numRegs <= 0,
            "Program '", info.name, "' declares ", info.numRegs,
            " registers");
    fatalIf(info.ctaThreads <= 0 || info.ctaThreads % 32 != 0,
            "Program '", info.name, "': ctaThreads (", info.ctaThreads,
            ") must be a positive multiple of 32");
    fatalIf(info.gridCtas <= 0,
            "Program '", info.name, "': gridCtas must be positive");
    fatalIf(info.sharedBytesPerCta < 0,
            "Program '", info.name, "': negative shared memory");
    if (regmutex.enabled()) {
        fatalIf(regmutex.baseRegs + regmutex.extRegs != info.numRegs,
                "Program '", info.name, "': |Bs| + |Es| = ",
                regmutex.baseRegs + regmutex.extRegs,
                " does not match numRegs = ", info.numRegs);
        fatalIf(regmutex.baseRegs <= 0,
                "Program '", info.name, "': non-positive |Bs|");
    }

    for (std::size_t i = 0; i < code.size(); ++i) {
        const Instruction &inst = code[i];
        const int want_srcs = numSourceOperands(inst.op);
        fatalIf(inst.numSrcs != want_srcs,
                "Program '", info.name, "' inst ", i, " (",
                opcodeName(inst.op), "): has ", int(inst.numSrcs),
                " sources, expected ", want_srcs);
        fatalIf(writesDst(inst.op) != inst.hasDst(),
                "Program '", info.name, "' inst ", i, " (",
                opcodeName(inst.op), "): destination mismatch");
        if (inst.hasDst()) {
            fatalIf(inst.dst >= info.numRegs,
                    "Program '", info.name, "' inst ", i,
                    ": dst register r", inst.dst, " exceeds numRegs ",
                    info.numRegs);
        }
        for (int s = 0; s < inst.numSrcs; ++s) {
            fatalIf(inst.srcs[s] == kNoReg,
                    "Program '", info.name, "' inst ", i,
                    ": missing source operand ", s);
            fatalIf(inst.srcs[s] >= info.numRegs,
                    "Program '", info.name, "' inst ", i,
                    ": src register r", inst.srcs[s],
                    " exceeds numRegs ", info.numRegs);
        }
        if (inst.isBranch()) {
            fatalIf(inst.target < 0 ||
                    inst.target >= static_cast<std::int32_t>(code.size()),
                    "Program '", info.name, "' inst ", i,
                    ": branch target ", inst.target, " out of range");
        }
        if (inst.op == Opcode::Setp) {
            fatalIf(inst.imm < 0 ||
                    inst.imm > static_cast<std::int64_t>(CmpOp::Ge),
                    "Program '", info.name, "' inst ", i,
                    ": bad cmp selector ", inst.imm);
        }
        if (inst.op == Opcode::ReadSreg) {
            fatalIf(inst.imm < 0 ||
                    inst.imm >= static_cast<std::int64_t>(
                        SpecialReg::NumSpecialRegs),
                    "Program '", info.name, "' inst ", i,
                    ": bad special register ", inst.imm);
        }
    }

    const Instruction &last = code.back();
    fatalIf(!last.isTerminator(),
            "Program '", info.name,
            "' can fall off the end (last instruction is ",
            opcodeName(last.op), ")");
}

int
Program::maxReferencedRegs() const
{
    int max_reg = -1;
    for (const auto &inst : code) {
        if (inst.hasDst())
            max_reg = std::max(max_reg, static_cast<int>(inst.dst));
        for (int s = 0; s < inst.numSrcs; ++s)
            max_reg = std::max(max_reg, static_cast<int>(inst.srcs[s]));
    }
    return max_reg + 1;
}

} // namespace rm
