#ifndef RM_ISA_DISASM_HH
#define RM_ISA_DISASM_HH

/**
 * @file
 * Textual rendering of instructions and programs, used by the compiler
 * inspector example and by test failure diagnostics.
 */

#include <string>

#include "isa/program.hh"

namespace rm {

/** Render a single instruction, e.g. "iadd r3, r1, r2". */
std::string disassemble(const Instruction &inst);

/**
 * Render a whole program, one instruction per line with indices and
 * branch targets, e.g. "  12: bra.nz r5, -> 4".
 */
std::string disassemble(const Program &program);

} // namespace rm

#endif // RM_ISA_DISASM_HH
