#ifndef RM_ISA_INSTRUCTION_HH
#define RM_ISA_INSTRUCTION_HH

/**
 * @file
 * The PTX-like warp-level instruction set executed by the simulator and
 * analyzed by the RegMutex compiler. The ISA is scalar per warp (see
 * DESIGN.md: intra-warp divergence is substituted by warp-uniform
 * control flow), with typed latency classes the timing model keys off.
 */

#include <array>
#include <cstdint>
#include <string>

namespace rm {

/** Architected register index within a warp's register block. */
using RegId = std::uint16_t;

/** Sentinel meaning "no register operand". */
constexpr RegId kNoReg = 0xffff;

/** Operation codes. */
enum class Opcode : std::uint8_t {
    // Integer ALU
    IAdd, ISub, IMul, IMad, IMin, IMax,
    And, Or, Xor, Shl, Shr,
    // Floating point (values are simulated in integer domain)
    FAdd, FMul, FFma,
    // Special function unit (long latency)
    FRcp, FSqrt,
    // Data movement
    Mov, MovImm, ReadSreg, Sel,
    // Comparison: dst = (src0 OP src1) ? 1 : 0, OP selected by imm
    Setp,
    // Memory
    LdGlobal, StGlobal, LdShared, StShared,
    // Control flow
    Bra, BraNz, BraZ, Exit,
    // CTA-wide barrier (__syncthreads)
    Bar,
    // RegMutex compiler-to-microarchitecture directives
    RegAcquire, RegRelease,
    Nop,
};

/** Comparison selector for Setp, carried in Instruction::imm. */
enum class CmpOp : std::int64_t { Eq = 0, Ne, Lt, Le, Gt, Ge };

/** Special (read-only, non-allocated) registers readable via ReadSreg. */
enum class SpecialReg : std::int64_t {
    CtaId = 0,     ///< CTA index within the grid
    WarpInCta,     ///< warp index within the CTA
    WarpsPerCta,   ///< number of warps per CTA
    GridCtas,      ///< total CTAs in the grid
    Param0,        ///< kernel parameter slots
    Param1,
    Param2,
    Param3,
    NumSpecialRegs,
};

/** Functional-unit / latency class of an opcode. */
enum class LatClass : std::uint8_t {
    Alu,        ///< short fixed latency
    Sfu,        ///< special function unit, long fixed latency
    GlobalMem,  ///< global memory, long variable latency
    SharedMem,  ///< shared memory, short fixed latency
    Control,    ///< branches; resolved at issue
    Barrier,    ///< CTA barrier
    AcqRel,     ///< RegMutex acquire/release, handled at issue stage
    ExitClass,  ///< warp termination
    NopClass,
};

/**
 * One machine instruction. Fixed-size POD: at most one destination
 * register, up to three source registers, one immediate, one branch
 * target (instruction index, resolved by the builder).
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    RegId dst = kNoReg;
    std::array<RegId, 3> srcs = {kNoReg, kNoReg, kNoReg};
    std::uint8_t numSrcs = 0;
    std::int64_t imm = 0;
    std::int32_t target = -1;

    /** True when the instruction writes a general-purpose register. */
    bool hasDst() const { return dst != kNoReg; }

    /** True for any branch opcode. */
    bool isBranch() const;

    /** True for conditional branches (fall-through is possible). */
    bool isConditionalBranch() const;

    /** True when control cannot fall through to the next instruction. */
    bool isTerminator() const;

    /** True for loads and stores of either memory space. */
    bool isMemory() const;
};

/** Latency class of @p op. Inline: the issue path classifies every
 *  instruction it issues, so the switch must fold at the call site. */
inline LatClass
latClass(Opcode op)
{
    switch (op) {
      case Opcode::IAdd:
      case Opcode::ISub:
      case Opcode::IMul:
      case Opcode::IMad:
      case Opcode::IMin:
      case Opcode::IMax:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::FAdd:
      case Opcode::FMul:
      case Opcode::FFma:
      case Opcode::Mov:
      case Opcode::MovImm:
      case Opcode::ReadSreg:
      case Opcode::Sel:
      case Opcode::Setp:
        return LatClass::Alu;
      case Opcode::FRcp:
      case Opcode::FSqrt:
        return LatClass::Sfu;
      case Opcode::LdGlobal:
      case Opcode::StGlobal:
        return LatClass::GlobalMem;
      case Opcode::LdShared:
      case Opcode::StShared:
        return LatClass::SharedMem;
      case Opcode::Bra:
      case Opcode::BraNz:
      case Opcode::BraZ:
        return LatClass::Control;
      case Opcode::Bar:
        return LatClass::Barrier;
      case Opcode::RegAcquire:
      case Opcode::RegRelease:
        return LatClass::AcqRel;
      case Opcode::Exit:
        return LatClass::ExitClass;
      case Opcode::Nop:
        return LatClass::NopClass;
    }
    return LatClass::NopClass;  // unreachable: all opcodes enumerated
}

/** Mnemonic string of @p op. */
const char *opcodeName(Opcode op);

/** Mnemonic for a comparison selector. */
const char *cmpName(CmpOp cmp);

/** Number of source register operands @p op requires. */
int numSourceOperands(Opcode op);

/** True when @p op writes a destination register. */
bool writesDst(Opcode op);

} // namespace rm

#endif // RM_ISA_INSTRUCTION_HH
