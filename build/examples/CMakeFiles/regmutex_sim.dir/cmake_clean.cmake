file(REMOVE_RECURSE
  "CMakeFiles/regmutex_sim.dir/regmutex_sim.cpp.o"
  "CMakeFiles/regmutex_sim.dir/regmutex_sim.cpp.o.d"
  "regmutex_sim"
  "regmutex_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regmutex_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
