# Empty dependencies file for regmutex_sim.
# This may be replaced when dependencies are built.
