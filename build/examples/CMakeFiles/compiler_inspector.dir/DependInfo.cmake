
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/compiler_inspector.cpp" "examples/CMakeFiles/compiler_inspector.dir/compiler_inspector.cpp.o" "gcc" "examples/CMakeFiles/compiler_inspector.dir/compiler_inspector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/rm_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/regmutex/CMakeFiles/rm_regmutex.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/rm_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/rm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/rm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rm_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
