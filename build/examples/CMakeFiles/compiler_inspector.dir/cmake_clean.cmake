file(REMOVE_RECURSE
  "CMakeFiles/compiler_inspector.dir/compiler_inspector.cpp.o"
  "CMakeFiles/compiler_inspector.dir/compiler_inspector.cpp.o.d"
  "compiler_inspector"
  "compiler_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
