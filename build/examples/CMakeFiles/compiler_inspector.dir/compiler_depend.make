# Empty compiler generated dependencies file for compiler_inspector.
# This may be replaced when dependencies are built.
