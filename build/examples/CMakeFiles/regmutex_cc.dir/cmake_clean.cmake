file(REMOVE_RECURSE
  "CMakeFiles/regmutex_cc.dir/regmutex_cc.cpp.o"
  "CMakeFiles/regmutex_cc.dir/regmutex_cc.cpp.o.d"
  "regmutex_cc"
  "regmutex_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regmutex_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
