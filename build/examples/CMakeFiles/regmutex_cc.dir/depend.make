# Empty dependencies file for regmutex_cc.
# This may be replaced when dependencies are built.
