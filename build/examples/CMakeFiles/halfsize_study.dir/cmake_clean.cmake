file(REMOVE_RECURSE
  "CMakeFiles/halfsize_study.dir/halfsize_study.cpp.o"
  "CMakeFiles/halfsize_study.dir/halfsize_study.cpp.o.d"
  "halfsize_study"
  "halfsize_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halfsize_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
