# Empty compiler generated dependencies file for halfsize_study.
# This may be replaced when dependencies are built.
