# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_sim_baseline "/root/repo/build/examples/regmutex_sim" "BFS" "--policy" "baseline")
set_tests_properties(cli_sim_baseline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_sim_regmutex "/root/repo/build/examples/regmutex_sim" "SPMV" "--half-rf" "--energy")
set_tests_properties(cli_sim_regmutex PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_compile "/root/repo/build/examples/regmutex_cc" "SAD")
set_tests_properties(cli_compile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_sim_asm_kernel "/root/repo/build/examples/regmutex_sim" "/root/repo/examples/kernels/countdown.asm" "--policy" "baseline")
set_tests_properties(cli_sim_asm_kernel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_compile_asm_kernel "/root/repo/build/examples/regmutex_cc" "/root/repo/examples/kernels/burst.asm")
set_tests_properties(cli_compile_asm_kernel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
