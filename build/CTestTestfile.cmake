# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_table1 "/root/repo/build/bench/table1_workloads")
set_tests_properties(bench_smoke_table1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;35;add_test;/root/repo/bench/CMakeLists.txt;0;;/root/repo/CMakeLists.txt;20;include;/root/repo/CMakeLists.txt;0;")
add_test(bench_smoke_hw_cost "/root/repo/build/bench/hw_cost_model")
set_tests_properties(bench_smoke_hw_cost PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;;/root/repo/CMakeLists.txt;20;include;/root/repo/CMakeLists.txt;0;")
add_test(bench_smoke_fig02 "/root/repo/build/bench/fig02_two_warp_example")
set_tests_properties(bench_smoke_fig02 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;;/root/repo/CMakeLists.txt;20;include;/root/repo/CMakeLists.txt;0;")
subdirs("src")
subdirs("tests")
subdirs("examples")
