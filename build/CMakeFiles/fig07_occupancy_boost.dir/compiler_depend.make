# Empty compiler generated dependencies file for fig07_occupancy_boost.
# This may be replaced when dependencies are built.
