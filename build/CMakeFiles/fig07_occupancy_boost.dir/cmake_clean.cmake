file(REMOVE_RECURSE
  "CMakeFiles/fig07_occupancy_boost.dir/bench/fig07_occupancy_boost.cc.o"
  "CMakeFiles/fig07_occupancy_boost.dir/bench/fig07_occupancy_boost.cc.o.d"
  "bench/fig07_occupancy_boost"
  "bench/fig07_occupancy_boost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_occupancy_boost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
