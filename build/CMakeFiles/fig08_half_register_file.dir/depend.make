# Empty dependencies file for fig08_half_register_file.
# This may be replaced when dependencies are built.
