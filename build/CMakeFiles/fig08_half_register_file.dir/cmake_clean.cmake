file(REMOVE_RECURSE
  "CMakeFiles/fig08_half_register_file.dir/bench/fig08_half_register_file.cc.o"
  "CMakeFiles/fig08_half_register_file.dir/bench/fig08_half_register_file.cc.o.d"
  "bench/fig08_half_register_file"
  "bench/fig08_half_register_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_half_register_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
