# Empty compiler generated dependencies file for fig02_two_warp_example.
# This may be replaced when dependencies are built.
