file(REMOVE_RECURSE
  "CMakeFiles/fig02_two_warp_example.dir/bench/fig02_two_warp_example.cc.o"
  "CMakeFiles/fig02_two_warp_example.dir/bench/fig02_two_warp_example.cc.o.d"
  "bench/fig02_two_warp_example"
  "bench/fig02_two_warp_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_two_warp_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
