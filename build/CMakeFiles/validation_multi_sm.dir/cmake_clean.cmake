file(REMOVE_RECURSE
  "CMakeFiles/validation_multi_sm.dir/bench/validation_multi_sm.cc.o"
  "CMakeFiles/validation_multi_sm.dir/bench/validation_multi_sm.cc.o.d"
  "bench/validation_multi_sm"
  "bench/validation_multi_sm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_multi_sm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
