# Empty compiler generated dependencies file for validation_multi_sm.
# This may be replaced when dependencies are built.
