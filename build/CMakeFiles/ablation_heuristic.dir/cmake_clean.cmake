file(REMOVE_RECURSE
  "CMakeFiles/ablation_heuristic.dir/bench/ablation_heuristic.cc.o"
  "CMakeFiles/ablation_heuristic.dir/bench/ablation_heuristic.cc.o.d"
  "bench/ablation_heuristic"
  "bench/ablation_heuristic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
