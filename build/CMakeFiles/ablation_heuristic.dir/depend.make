# Empty dependencies file for ablation_heuristic.
# This may be replaced when dependencies are built.
