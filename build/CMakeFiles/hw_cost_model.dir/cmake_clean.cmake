file(REMOVE_RECURSE
  "CMakeFiles/hw_cost_model.dir/bench/hw_cost_model.cc.o"
  "CMakeFiles/hw_cost_model.dir/bench/hw_cost_model.cc.o.d"
  "bench/hw_cost_model"
  "bench/hw_cost_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
