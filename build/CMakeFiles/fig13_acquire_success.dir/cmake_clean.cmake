file(REMOVE_RECURSE
  "CMakeFiles/fig13_acquire_success.dir/bench/fig13_acquire_success.cc.o"
  "CMakeFiles/fig13_acquire_success.dir/bench/fig13_acquire_success.cc.o.d"
  "bench/fig13_acquire_success"
  "bench/fig13_acquire_success.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_acquire_success.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
