# Empty compiler generated dependencies file for fig13_acquire_success.
# This may be replaced when dependencies are built.
