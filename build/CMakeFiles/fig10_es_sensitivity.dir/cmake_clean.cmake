file(REMOVE_RECURSE
  "CMakeFiles/fig10_es_sensitivity.dir/bench/fig10_es_sensitivity.cc.o"
  "CMakeFiles/fig10_es_sensitivity.dir/bench/fig10_es_sensitivity.cc.o.d"
  "bench/fig10_es_sensitivity"
  "bench/fig10_es_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_es_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
