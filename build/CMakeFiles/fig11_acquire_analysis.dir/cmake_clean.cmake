file(REMOVE_RECURSE
  "CMakeFiles/fig11_acquire_analysis.dir/bench/fig11_acquire_analysis.cc.o"
  "CMakeFiles/fig11_acquire_analysis.dir/bench/fig11_acquire_analysis.cc.o.d"
  "bench/fig11_acquire_analysis"
  "bench/fig11_acquire_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_acquire_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
