# Empty dependencies file for fig11_acquire_analysis.
# This may be replaced when dependencies are built.
