# Empty dependencies file for fig01_liveness_timeline.
# This may be replaced when dependencies are built.
