file(REMOVE_RECURSE
  "CMakeFiles/fig01_liveness_timeline.dir/bench/fig01_liveness_timeline.cc.o"
  "CMakeFiles/fig01_liveness_timeline.dir/bench/fig01_liveness_timeline.cc.o.d"
  "bench/fig01_liveness_timeline"
  "bench/fig01_liveness_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_liveness_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
