file(REMOVE_RECURSE
  "CMakeFiles/fig12_paired_warps.dir/bench/fig12_paired_warps.cc.o"
  "CMakeFiles/fig12_paired_warps.dir/bench/fig12_paired_warps.cc.o.d"
  "bench/fig12_paired_warps"
  "bench/fig12_paired_warps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_paired_warps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
