# Empty compiler generated dependencies file for fig12_paired_warps.
# This may be replaced when dependencies are built.
