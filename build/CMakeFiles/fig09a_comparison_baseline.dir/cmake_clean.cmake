file(REMOVE_RECURSE
  "CMakeFiles/fig09a_comparison_baseline.dir/bench/fig09a_comparison_baseline.cc.o"
  "CMakeFiles/fig09a_comparison_baseline.dir/bench/fig09a_comparison_baseline.cc.o.d"
  "bench/fig09a_comparison_baseline"
  "bench/fig09a_comparison_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09a_comparison_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
