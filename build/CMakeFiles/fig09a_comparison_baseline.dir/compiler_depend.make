# Empty compiler generated dependencies file for fig09a_comparison_baseline.
# This may be replaced when dependencies are built.
