file(REMOVE_RECURSE
  "CMakeFiles/generalization_post_fermi.dir/bench/generalization_post_fermi.cc.o"
  "CMakeFiles/generalization_post_fermi.dir/bench/generalization_post_fermi.cc.o.d"
  "bench/generalization_post_fermi"
  "bench/generalization_post_fermi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generalization_post_fermi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
