# Empty compiler generated dependencies file for generalization_post_fermi.
# This may be replaced when dependencies are built.
