file(REMOVE_RECURSE
  "CMakeFiles/fig09b_comparison_half_rf.dir/bench/fig09b_comparison_half_rf.cc.o"
  "CMakeFiles/fig09b_comparison_half_rf.dir/bench/fig09b_comparison_half_rf.cc.o.d"
  "bench/fig09b_comparison_half_rf"
  "bench/fig09b_comparison_half_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09b_comparison_half_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
