# Empty dependencies file for fig09b_comparison_half_rf.
# This may be replaced when dependencies are built.
