file(REMOVE_RECURSE
  "librm_regmutex.a"
)
