file(REMOVE_RECURSE
  "CMakeFiles/rm_regmutex.dir/allocator.cc.o"
  "CMakeFiles/rm_regmutex.dir/allocator.cc.o.d"
  "CMakeFiles/rm_regmutex.dir/energy.cc.o"
  "CMakeFiles/rm_regmutex.dir/energy.cc.o.d"
  "CMakeFiles/rm_regmutex.dir/hw_cost.cc.o"
  "CMakeFiles/rm_regmutex.dir/hw_cost.cc.o.d"
  "librm_regmutex.a"
  "librm_regmutex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rm_regmutex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
