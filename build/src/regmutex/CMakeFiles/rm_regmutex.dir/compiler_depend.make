# Empty compiler generated dependencies file for rm_regmutex.
# This may be replaced when dependencies are built.
