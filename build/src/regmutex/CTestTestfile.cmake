# CMake generated Testfile for 
# Source directory: /root/repo/src/regmutex
# Build directory: /root/repo/build/src/regmutex
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
