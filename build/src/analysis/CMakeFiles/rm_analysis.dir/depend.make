# Empty dependencies file for rm_analysis.
# This may be replaced when dependencies are built.
