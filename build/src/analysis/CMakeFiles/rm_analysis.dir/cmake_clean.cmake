file(REMOVE_RECURSE
  "CMakeFiles/rm_analysis.dir/cfg.cc.o"
  "CMakeFiles/rm_analysis.dir/cfg.cc.o.d"
  "CMakeFiles/rm_analysis.dir/dominators.cc.o"
  "CMakeFiles/rm_analysis.dir/dominators.cc.o.d"
  "CMakeFiles/rm_analysis.dir/liveness.cc.o"
  "CMakeFiles/rm_analysis.dir/liveness.cc.o.d"
  "CMakeFiles/rm_analysis.dir/liveness_report.cc.o"
  "CMakeFiles/rm_analysis.dir/liveness_report.cc.o.d"
  "CMakeFiles/rm_analysis.dir/loops.cc.o"
  "CMakeFiles/rm_analysis.dir/loops.cc.o.d"
  "librm_analysis.a"
  "librm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
