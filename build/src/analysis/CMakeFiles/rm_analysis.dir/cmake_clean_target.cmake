file(REMOVE_RECURSE
  "librm_analysis.a"
)
