# Empty compiler generated dependencies file for rm_core.
# This may be replaced when dependencies are built.
