file(REMOVE_RECURSE
  "librm_core.a"
)
