file(REMOVE_RECURSE
  "CMakeFiles/rm_core.dir/experiment.cc.o"
  "CMakeFiles/rm_core.dir/experiment.cc.o.d"
  "librm_core.a"
  "librm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
