# Empty dependencies file for rm_isa.
# This may be replaced when dependencies are built.
