file(REMOVE_RECURSE
  "librm_isa.a"
)
