file(REMOVE_RECURSE
  "CMakeFiles/rm_isa.dir/asm_parser.cc.o"
  "CMakeFiles/rm_isa.dir/asm_parser.cc.o.d"
  "CMakeFiles/rm_isa.dir/builder.cc.o"
  "CMakeFiles/rm_isa.dir/builder.cc.o.d"
  "CMakeFiles/rm_isa.dir/disasm.cc.o"
  "CMakeFiles/rm_isa.dir/disasm.cc.o.d"
  "CMakeFiles/rm_isa.dir/instruction.cc.o"
  "CMakeFiles/rm_isa.dir/instruction.cc.o.d"
  "CMakeFiles/rm_isa.dir/program.cc.o"
  "CMakeFiles/rm_isa.dir/program.cc.o.d"
  "librm_isa.a"
  "librm_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rm_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
