file(REMOVE_RECURSE
  "librm_compiler.a"
)
