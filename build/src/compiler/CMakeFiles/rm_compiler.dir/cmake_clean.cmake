file(REMOVE_RECURSE
  "CMakeFiles/rm_compiler.dir/coloring.cc.o"
  "CMakeFiles/rm_compiler.dir/coloring.cc.o.d"
  "CMakeFiles/rm_compiler.dir/edit.cc.o"
  "CMakeFiles/rm_compiler.dir/edit.cc.o.d"
  "CMakeFiles/rm_compiler.dir/es_selection.cc.o"
  "CMakeFiles/rm_compiler.dir/es_selection.cc.o.d"
  "CMakeFiles/rm_compiler.dir/pipeline.cc.o"
  "CMakeFiles/rm_compiler.dir/pipeline.cc.o.d"
  "CMakeFiles/rm_compiler.dir/regions.cc.o"
  "CMakeFiles/rm_compiler.dir/regions.cc.o.d"
  "CMakeFiles/rm_compiler.dir/split.cc.o"
  "CMakeFiles/rm_compiler.dir/split.cc.o.d"
  "CMakeFiles/rm_compiler.dir/validator.cc.o"
  "CMakeFiles/rm_compiler.dir/validator.cc.o.d"
  "CMakeFiles/rm_compiler.dir/webs.cc.o"
  "CMakeFiles/rm_compiler.dir/webs.cc.o.d"
  "librm_compiler.a"
  "librm_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rm_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
