
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/coloring.cc" "src/compiler/CMakeFiles/rm_compiler.dir/coloring.cc.o" "gcc" "src/compiler/CMakeFiles/rm_compiler.dir/coloring.cc.o.d"
  "/root/repo/src/compiler/edit.cc" "src/compiler/CMakeFiles/rm_compiler.dir/edit.cc.o" "gcc" "src/compiler/CMakeFiles/rm_compiler.dir/edit.cc.o.d"
  "/root/repo/src/compiler/es_selection.cc" "src/compiler/CMakeFiles/rm_compiler.dir/es_selection.cc.o" "gcc" "src/compiler/CMakeFiles/rm_compiler.dir/es_selection.cc.o.d"
  "/root/repo/src/compiler/pipeline.cc" "src/compiler/CMakeFiles/rm_compiler.dir/pipeline.cc.o" "gcc" "src/compiler/CMakeFiles/rm_compiler.dir/pipeline.cc.o.d"
  "/root/repo/src/compiler/regions.cc" "src/compiler/CMakeFiles/rm_compiler.dir/regions.cc.o" "gcc" "src/compiler/CMakeFiles/rm_compiler.dir/regions.cc.o.d"
  "/root/repo/src/compiler/split.cc" "src/compiler/CMakeFiles/rm_compiler.dir/split.cc.o" "gcc" "src/compiler/CMakeFiles/rm_compiler.dir/split.cc.o.d"
  "/root/repo/src/compiler/validator.cc" "src/compiler/CMakeFiles/rm_compiler.dir/validator.cc.o" "gcc" "src/compiler/CMakeFiles/rm_compiler.dir/validator.cc.o.d"
  "/root/repo/src/compiler/webs.cc" "src/compiler/CMakeFiles/rm_compiler.dir/webs.cc.o" "gcc" "src/compiler/CMakeFiles/rm_compiler.dir/webs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/rm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rm_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
