# Empty dependencies file for rm_compiler.
# This may be replaced when dependencies are built.
