file(REMOVE_RECURSE
  "librm_workloads.a"
)
