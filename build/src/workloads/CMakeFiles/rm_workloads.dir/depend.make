# Empty dependencies file for rm_workloads.
# This may be replaced when dependencies are built.
