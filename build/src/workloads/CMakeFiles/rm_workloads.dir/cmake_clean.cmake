file(REMOVE_RECURSE
  "CMakeFiles/rm_workloads.dir/generator.cc.o"
  "CMakeFiles/rm_workloads.dir/generator.cc.o.d"
  "CMakeFiles/rm_workloads.dir/suite.cc.o"
  "CMakeFiles/rm_workloads.dir/suite.cc.o.d"
  "librm_workloads.a"
  "librm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
