file(REMOVE_RECURSE
  "CMakeFiles/rm_sim.dir/config.cc.o"
  "CMakeFiles/rm_sim.dir/config.cc.o.d"
  "CMakeFiles/rm_sim.dir/gpu.cc.o"
  "CMakeFiles/rm_sim.dir/gpu.cc.o.d"
  "CMakeFiles/rm_sim.dir/interpreter.cc.o"
  "CMakeFiles/rm_sim.dir/interpreter.cc.o.d"
  "CMakeFiles/rm_sim.dir/memory.cc.o"
  "CMakeFiles/rm_sim.dir/memory.cc.o.d"
  "CMakeFiles/rm_sim.dir/occupancy.cc.o"
  "CMakeFiles/rm_sim.dir/occupancy.cc.o.d"
  "CMakeFiles/rm_sim.dir/register_map.cc.o"
  "CMakeFiles/rm_sim.dir/register_map.cc.o.d"
  "CMakeFiles/rm_sim.dir/semantics.cc.o"
  "CMakeFiles/rm_sim.dir/semantics.cc.o.d"
  "CMakeFiles/rm_sim.dir/sm.cc.o"
  "CMakeFiles/rm_sim.dir/sm.cc.o.d"
  "CMakeFiles/rm_sim.dir/stats.cc.o"
  "CMakeFiles/rm_sim.dir/stats.cc.o.d"
  "CMakeFiles/rm_sim.dir/trace.cc.o"
  "CMakeFiles/rm_sim.dir/trace.cc.o.d"
  "librm_sim.a"
  "librm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
