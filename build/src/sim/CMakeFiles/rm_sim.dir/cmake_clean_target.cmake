file(REMOVE_RECURSE
  "librm_sim.a"
)
