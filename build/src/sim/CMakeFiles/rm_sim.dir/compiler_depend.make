# Empty compiler generated dependencies file for rm_sim.
# This may be replaced when dependencies are built.
