src/sim/CMakeFiles/rm_sim.dir/config.cc.o: /root/repo/src/sim/config.cc \
 /usr/include/stdc-predef.h /root/repo/src/sim/config.hh
