
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/config.cc" "src/sim/CMakeFiles/rm_sim.dir/config.cc.o" "gcc" "src/sim/CMakeFiles/rm_sim.dir/config.cc.o.d"
  "/root/repo/src/sim/gpu.cc" "src/sim/CMakeFiles/rm_sim.dir/gpu.cc.o" "gcc" "src/sim/CMakeFiles/rm_sim.dir/gpu.cc.o.d"
  "/root/repo/src/sim/interpreter.cc" "src/sim/CMakeFiles/rm_sim.dir/interpreter.cc.o" "gcc" "src/sim/CMakeFiles/rm_sim.dir/interpreter.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/rm_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/rm_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/occupancy.cc" "src/sim/CMakeFiles/rm_sim.dir/occupancy.cc.o" "gcc" "src/sim/CMakeFiles/rm_sim.dir/occupancy.cc.o.d"
  "/root/repo/src/sim/register_map.cc" "src/sim/CMakeFiles/rm_sim.dir/register_map.cc.o" "gcc" "src/sim/CMakeFiles/rm_sim.dir/register_map.cc.o.d"
  "/root/repo/src/sim/semantics.cc" "src/sim/CMakeFiles/rm_sim.dir/semantics.cc.o" "gcc" "src/sim/CMakeFiles/rm_sim.dir/semantics.cc.o.d"
  "/root/repo/src/sim/sm.cc" "src/sim/CMakeFiles/rm_sim.dir/sm.cc.o" "gcc" "src/sim/CMakeFiles/rm_sim.dir/sm.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/sim/CMakeFiles/rm_sim.dir/stats.cc.o" "gcc" "src/sim/CMakeFiles/rm_sim.dir/stats.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/rm_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/rm_sim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/rm_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
