
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/baseline.cc" "src/baselines/CMakeFiles/rm_baselines.dir/baseline.cc.o" "gcc" "src/baselines/CMakeFiles/rm_baselines.dir/baseline.cc.o.d"
  "/root/repo/src/baselines/owf.cc" "src/baselines/CMakeFiles/rm_baselines.dir/owf.cc.o" "gcc" "src/baselines/CMakeFiles/rm_baselines.dir/owf.cc.o.d"
  "/root/repo/src/baselines/rfv.cc" "src/baselines/CMakeFiles/rm_baselines.dir/rfv.cc.o" "gcc" "src/baselines/CMakeFiles/rm_baselines.dir/rfv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/rm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rm_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
