# Empty dependencies file for rm_baselines.
# This may be replaced when dependencies are built.
