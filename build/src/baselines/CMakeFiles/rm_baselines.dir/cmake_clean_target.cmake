file(REMOVE_RECURSE
  "librm_baselines.a"
)
