file(REMOVE_RECURSE
  "CMakeFiles/rm_baselines.dir/baseline.cc.o"
  "CMakeFiles/rm_baselines.dir/baseline.cc.o.d"
  "CMakeFiles/rm_baselines.dir/owf.cc.o"
  "CMakeFiles/rm_baselines.dir/owf.cc.o.d"
  "CMakeFiles/rm_baselines.dir/rfv.cc.o"
  "CMakeFiles/rm_baselines.dir/rfv.cc.o.d"
  "librm_baselines.a"
  "librm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
