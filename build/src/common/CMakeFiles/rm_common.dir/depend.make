# Empty dependencies file for rm_common.
# This may be replaced when dependencies are built.
