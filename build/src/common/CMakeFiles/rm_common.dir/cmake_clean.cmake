file(REMOVE_RECURSE
  "CMakeFiles/rm_common.dir/bitmask.cc.o"
  "CMakeFiles/rm_common.dir/bitmask.cc.o.d"
  "CMakeFiles/rm_common.dir/logging.cc.o"
  "CMakeFiles/rm_common.dir/logging.cc.o.d"
  "CMakeFiles/rm_common.dir/rng.cc.o"
  "CMakeFiles/rm_common.dir/rng.cc.o.d"
  "CMakeFiles/rm_common.dir/table.cc.o"
  "CMakeFiles/rm_common.dir/table.cc.o.d"
  "librm_common.a"
  "librm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
