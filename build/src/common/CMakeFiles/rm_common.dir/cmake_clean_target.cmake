file(REMOVE_RECURSE
  "librm_common.a"
)
