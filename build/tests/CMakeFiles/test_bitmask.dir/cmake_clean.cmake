file(REMOVE_RECURSE
  "CMakeFiles/test_bitmask.dir/test_bitmask.cc.o"
  "CMakeFiles/test_bitmask.dir/test_bitmask.cc.o.d"
  "test_bitmask"
  "test_bitmask.pdb"
  "test_bitmask[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitmask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
