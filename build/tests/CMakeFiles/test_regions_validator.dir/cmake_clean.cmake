file(REMOVE_RECURSE
  "CMakeFiles/test_regions_validator.dir/test_regions_validator.cc.o"
  "CMakeFiles/test_regions_validator.dir/test_regions_validator.cc.o.d"
  "test_regions_validator"
  "test_regions_validator.pdb"
  "test_regions_validator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regions_validator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
