file(REMOVE_RECURSE
  "CMakeFiles/test_asm_parser.dir/test_asm_parser.cc.o"
  "CMakeFiles/test_asm_parser.dir/test_asm_parser.cc.o.d"
  "test_asm_parser"
  "test_asm_parser.pdb"
  "test_asm_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asm_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
