# Empty dependencies file for test_compiler_cfg_cases.
# This may be replaced when dependencies are built.
