file(REMOVE_RECURSE
  "CMakeFiles/test_compiler_cfg_cases.dir/test_compiler_cfg_cases.cc.o"
  "CMakeFiles/test_compiler_cfg_cases.dir/test_compiler_cfg_cases.cc.o.d"
  "test_compiler_cfg_cases"
  "test_compiler_cfg_cases.pdb"
  "test_compiler_cfg_cases[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compiler_cfg_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
