# Empty dependencies file for test_compiler_passes.
# This may be replaced when dependencies are built.
