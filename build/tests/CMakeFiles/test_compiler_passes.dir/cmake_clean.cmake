file(REMOVE_RECURSE
  "CMakeFiles/test_compiler_passes.dir/test_compiler_passes.cc.o"
  "CMakeFiles/test_compiler_passes.dir/test_compiler_passes.cc.o.d"
  "test_compiler_passes"
  "test_compiler_passes.pdb"
  "test_compiler_passes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compiler_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
