# Empty dependencies file for test_register_map.
# This may be replaced when dependencies are built.
