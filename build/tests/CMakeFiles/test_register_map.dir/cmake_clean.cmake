file(REMOVE_RECURSE
  "CMakeFiles/test_register_map.dir/test_register_map.cc.o"
  "CMakeFiles/test_register_map.dir/test_register_map.cc.o.d"
  "test_register_map"
  "test_register_map.pdb"
  "test_register_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_register_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
