# Empty compiler generated dependencies file for test_es_selection.
# This may be replaced when dependencies are built.
