file(REMOVE_RECURSE
  "CMakeFiles/test_es_selection.dir/test_es_selection.cc.o"
  "CMakeFiles/test_es_selection.dir/test_es_selection.cc.o.d"
  "test_es_selection"
  "test_es_selection.pdb"
  "test_es_selection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_es_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
