# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bitmask[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_cfg[1]_include.cmake")
include("/root/repo/build/tests/test_liveness[1]_include.cmake")
include("/root/repo/build/tests/test_occupancy[1]_include.cmake")
include("/root/repo/build/tests/test_memory[1]_include.cmake")
include("/root/repo/build/tests/test_interpreter[1]_include.cmake")
include("/root/repo/build/tests/test_register_map[1]_include.cmake")
include("/root/repo/build/tests/test_sm[1]_include.cmake")
include("/root/repo/build/tests/test_compiler_passes[1]_include.cmake")
include("/root/repo/build/tests/test_regions_validator[1]_include.cmake")
include("/root/repo/build/tests/test_es_selection[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_allocators[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_asm_parser[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
include("/root/repo/build/tests/test_coalescing[1]_include.cmake")
include("/root/repo/build/tests/test_invariants[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_compiler_cfg_cases[1]_include.cmake")
